//! The shared out-of-order core.
//!
//! One machine model executes both ISAs: fetch (with direction
//! prediction and a return-address stack), a latency-modeled front-end
//! pipe, an ISA-specific rename stage (RAM-based RMT + free list for
//! SS, the RP adders for STRAIGHT — Figure 3), dispatch into a
//! unified scheduler, age-ordered issue over the Table-I functional
//! units, a load/store queue with store-to-load forwarding and
//! memory-dependence speculation, and in-order commit from the ROB.
//!
//! Recovery is where the two machines differ (Figure 4): SS restores
//! the RMT by walking squashed ROB entries at front-end width per
//! cycle and stalls rename until the walk completes; STRAIGHT restores
//! RP/SP from a single ROB entry in one cycle.
//!
//! Faults are precise: fetch/decode faults, out-of-range operand
//! distances, and wild/misaligned memory accesses travel through the
//! pipeline as typed [`TrapKind`]s attached to their instruction and
//! are raised only when that instruction reaches the ROB head —
//! wrong-path faults are squashed like any other speculation. A
//! forward-progress watchdog aborts (with a structured
//! [`WatchdogReport`]) if commit stops, and the opt-in hazard
//! sanitizer cross-validates every retired instruction against a
//! shadow functional emulator.

use std::collections::VecDeque;
use std::fmt;

use super::lsq::LsqSlab;
use super::rob::{RState, RobSlab};
use super::sched::Scheduler;
use super::slab::{SlotBits, SlotHandle};
use super::wheel::{CompletionWheel, Inflight, LoadSrc};

use straight_asm::{Image, ImageIsa, MEM_SIZE, STACK_TOP};
use straight_isa::{MemWidth, Trap, TrapKind};
use straight_riscv::Reg;

use crate::emu::checkpoint::ArchSnap;
use crate::emu::sys::SysState;
use crate::emu::{Checkpoint, EmuExit, ExecBackend, RiscvEmu, StraightEmu};
use crate::inject::FaultKind;
use crate::mem::Hierarchy;
use crate::predict::{build, DirectionPredictor, Ras, RasCheckpoint, StoreSets};

use super::config::{IsaKind, MachineConfig};
use super::stats::{SimExit, SimResult, SimStats, WatchdogReport};
use super::uop::{
    rename_riscv, rename_straight, ControlInfo, ExecUnit, FuncOp, RawInst, RmtState, RpState, UOp,
};

/// Default cycle budget for [`simulate`].
pub const DEFAULT_MAX_CYCLES: u64 = 2_000_000_000;

/// A configuration/image mismatch detected while constructing a
/// [`Core`] — the machine cannot meaningfully execute at all, so this
/// is an error at build time rather than a [`Trap`] at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreError {
    /// The image's ISA does not match the machine's front-end model.
    IsaMismatch {
        /// The machine's front-end model.
        machine: IsaKind,
        /// The ISA the image was linked for.
        image: ImageIsa,
    },
    /// The physical register file cannot hold the architectural state
    /// (RV32 needs all 32 logical mappings plus at least one free
    /// register to rename into).
    TooFewPhysRegs {
        /// The configured register-file size.
        phys_regs: u32,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::IsaMismatch { machine, image } => {
                write!(f, "machine front-end {machine:?} cannot execute a {image} image")
            }
            CoreError::TooFewPhysRegs { phys_regs } => {
                write!(f, "{phys_regs} physical registers (need at least 33)")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[derive(Debug, Clone, Copy)]
struct FrontEntry {
    ready_at: u64,
    pc: u32,
    raw: RawInst,
    predicted_next: u32,
    pred_taken: bool,
    ras_cp: RasCheckpoint,
}

/// The hazard sanitizer's oracle: a shadow functional emulator stepped
/// once per retired instruction.
enum Shadow {
    S(Box<StraightEmu>),
    R(Box<RiscvEmu>),
}

fn check_load(width: MemWidth, addr: u32, mem_len: usize) -> Option<TrapKind> {
    if !addr.is_multiple_of(width.bytes()) {
        Some(TrapKind::MisalignedLoad { addr, width })
    } else if addr as usize + width.bytes() as usize > mem_len {
        Some(TrapKind::WildLoad { addr, width })
    } else {
        None
    }
}

fn check_store(width: MemWidth, addr: u32, mem_len: usize) -> Option<TrapKind> {
    if !addr.is_multiple_of(width.bytes()) {
        Some(TrapKind::MisalignedStore { addr, width })
    } else if addr as usize + width.bytes() as usize > mem_len {
        Some(TrapKind::WildStore { addr, width })
    } else {
        None
    }
}

/// The cycle-accurate core.
pub struct Core {
    cfg: MachineConfig,
    image: Image,
    /// The code segment decoded once up front: fetch in a hot loop
    /// re-reads the same words millions of times, and decoding is pure
    /// in the word, so this caches `RawInst`s (including illegal-word
    /// faults) per slot.
    predecoded: Vec<RawInst>,
    /// Control classification per code slot, precomputed with
    /// `predecoded`: fetch consults it for every instruction, and the
    /// targets only depend on the (fixed) word and PC.
    control: Vec<ControlInfo>,
    mem: Vec<u8>,
    hier: Hierarchy,
    bp: Box<dyn DirectionPredictor>,
    ras: Ras,
    memdep: StoreSets,
    prf: Vec<u32>,
    /// Physical-register readiness as a packed bitset (one bit per
    /// register), matching the slot bitsets of the scheduler.
    prf_ready: SlotBits,
    rp_state: RpState,
    arch_rp: RpState,
    rmt_state: RmtState,
    /// The reorder buffer as a structure-of-arrays ring slab; stages
    /// index its flat columns by slot instead of chasing deque entries.
    rob: RobSlab,
    next_seq: u64,
    /// Dispatch identity counter; unlike `next_seq` it never rewinds.
    next_uid: u64,
    sched: Scheduler,
    inflight: CompletionWheel,
    /// Reused per-cycle buffer for completions due this cycle.
    due_scratch: Vec<Inflight>,
    lsq: LsqSlab,
    front_q: VecDeque<FrontEntry>,
    fetch_pc: u32,
    fetch_stall_until: u64,
    /// Fetch hit a fault (left the image or an undecodable word) and
    /// parked until a recovery redirects it; the fault itself travels
    /// through the pipeline as a trap micro-op.
    fetch_faulted: bool,
    rename_stall_until: u64,
    div_busy_until: Vec<u64>,
    cycle: u64,
    last_commit_cycle: u64,
    sys: SysState,
    stats: SimStats,
    halted: Option<i32>,
    /// A raised trap (architectural, sanitizer, or watchdog); ends the
    /// simulation.
    fatal: Option<Trap>,
    watchdog_report: Option<WatchdogReport>,
    /// The sanitizer's oracle emulator, constructed lazily at the
    /// first retirement when `cfg.sanitizer` is set: default runs
    /// never clone the image into a shadow emulator at all.
    shadow: Option<Shadow>,
    shadow_done: bool,
    pending_faults: Vec<(u64, FaultKind)>,
    faults_applied: u32,
    force_flip_branch: bool,
    /// Debug: (load pc, store pc) of each memory-order violation.
    pub violation_log: Vec<(u32, u32)>,
    /// Host nanoseconds per pipeline stage, in [`STAGE_NAMES`] order.
    #[cfg(feature = "stage-profile")]
    stage_ns: [u64; 5],
}

/// Stage labels for [`Core::stage_profile`], in `step()` order.
#[cfg(feature = "stage-profile")]
pub const STAGE_NAMES: [&str; 5] = ["commit", "complete", "issue", "rename", "fetch"];

impl Core {
    /// Builds a core for a linked image, validating that the machine
    /// can actually execute it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when the image's ISA does not match the
    /// machine's front-end or the register file is too small for the
    /// architectural state.
    pub fn new(image: Image, cfg: MachineConfig) -> Result<Core, CoreError> {
        let compatible = matches!(
            (cfg.isa, image.isa),
            (IsaKind::Straight, ImageIsa::Straight) | (IsaKind::Ss, ImageIsa::Riscv)
        );
        if !compatible {
            return Err(CoreError::IsaMismatch { machine: cfg.isa, image: image.isa });
        }
        if cfg.phys_regs < 33 {
            return Err(CoreError::TooFewPhysRegs { phys_regs: cfg.phys_regs });
        }
        let mut mem = vec![0u8; MEM_SIZE as usize];
        image.load_into(&mut mem);
        let phys = cfg.phys_regs as usize;
        let mut prf = vec![0u32; phys];
        let mut rmt_state = RmtState::new(cfg.phys_regs);
        // Architectural init: SP (x2 for RV32; the SP register for
        // STRAIGHT lives in the rename stage).
        prf[rmt_state.rmt[2] as usize] = STACK_TOP;
        rmt_state.freelist.make_contiguous();
        let fetch_pc = image.entry;
        let predecoded: Vec<RawInst> = image
            .code
            .iter()
            .map(|&word| match cfg.isa {
                IsaKind::Straight => match straight_isa::decode(word) {
                    Ok(i) => RawInst::S(i),
                    Err(_) => RawInst::Fault(TrapKind::IllegalInstruction { word }),
                },
                IsaKind::Ss => match straight_riscv::decode(word) {
                    Ok(i) => RawInst::R(i),
                    Err(_) => RawInst::Fault(TrapKind::IllegalInstruction { word }),
                },
            })
            .collect();
        let control: Vec<ControlInfo> = predecoded
            .iter()
            .enumerate()
            .map(|(idx, raw)| raw.control_info(image.code_base + 4 * idx as u32))
            .collect();
        let mut prf_ready = SlotBits::new(phys);
        for p in 0..phys {
            prf_ready.set(p);
        }
        let placeholder = UOp::trap(0, TrapKind::FetchFault, 0, 0);
        let rob = RobSlab::new(cfg.rob_capacity as usize, placeholder);
        Ok(Core {
            bp: build(cfg.predictor),
            hier: Hierarchy::new(cfg.hierarchy),
            div_busy_until: vec![0; cfg.units.div as usize],
            sched: Scheduler::new(phys, rob.slot_capacity()),
            lsq: LsqSlab::new(cfg.lsq_ld as usize, cfg.lsq_st as usize),
            cfg,
            image,
            predecoded,
            control,
            mem,
            ras: Ras::new(),
            memdep: StoreSets::new(),
            prf,
            prf_ready,
            rp_state: RpState { rp: 0, sp: STACK_TOP },
            arch_rp: RpState { rp: 0, sp: STACK_TOP },
            rmt_state,
            rob,
            next_seq: 0,
            next_uid: 0,
            inflight: CompletionWheel::new(),
            due_scratch: Vec::new(),
            front_q: VecDeque::new(),
            fetch_pc,
            fetch_stall_until: 0,
            fetch_faulted: false,
            rename_stall_until: 0,
            cycle: 0,
            last_commit_cycle: 0,
            sys: SysState::default(),
            stats: SimStats::default(),
            halted: None,
            fatal: None,
            watchdog_report: None,
            shadow: None,
            shadow_done: false,
            pending_faults: Vec::new(),
            faults_applied: 0,
            force_flip_branch: false,
            violation_log: Vec::new(),
            #[cfg(feature = "stage-profile")]
            stage_ns: [0; 5],
        })
    }

    /// Builds a core whose architectural state continues from an
    /// emulator [`Checkpoint`] instead of the image entry point: memory
    /// is the image overlaid with the checkpoint's dirty pages, fetch
    /// starts at the checkpoint PC, commit sequence numbers continue
    /// from the checkpoint's executed count, and the register state is
    /// seeded ISA-appropriately — the RMT-mapped physical registers
    /// for SS, the RP position plus the reachable tail of the result
    /// ring for STRAIGHT (distance `d` resolves to physical register
    /// `(rp + phys − d) mod phys`, exactly what the RP adders will
    /// compute for the first resumed instructions).
    ///
    /// Microarchitectural state (predictors, caches, RAS, store sets)
    /// starts cold — that is the documented sampling bias of the
    /// `Sampled` experiments. The hazard sanitizer is unavailable on a
    /// resumed core (its oracle emulator can only replay from the
    /// image start) and is disabled regardless of configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IsaMismatch`] when the machine, the image,
    /// and the checkpoint do not all agree on the ISA, and the same
    /// construction errors as [`Core::new`] otherwise.
    pub fn resume_from(
        image: Image,
        cfg: MachineConfig,
        cp: &Checkpoint,
    ) -> Result<Core, CoreError> {
        let machine = cfg.isa;
        let mut core = Core::new(image, cfg)?;
        if cp.isa() != core.image.isa {
            return Err(CoreError::IsaMismatch { machine, image: cp.isa() });
        }
        cp.apply_pages(&mut core.mem);
        core.fetch_pc = cp.pc();
        core.sys = cp.sys.clone();
        match &cp.arch {
            ArchSnap::Straight { sp, ring } => {
                let phys = u64::from(core.cfg.phys_regs);
                let n = cp.executed();
                let rp = (n % phys) as u32;
                core.rp_state = RpState { rp, sp: *sp };
                core.arch_rp = RpState { rp, sp: *sp };
                // Seed every physical register a resumed distance can
                // reach: producer `n - d` lives in ring slot
                // `(n - d) mod RING` and must appear in physical
                // register `(rp + phys - d) mod phys`.
                let reach = (phys - 1).min(n).min(ring.len() as u64);
                for d in 1..=reach {
                    let p = ((u64::from(rp) + phys - d) % phys) as usize;
                    core.prf[p] = ring[((n - d) % ring.len() as u64) as usize];
                }
            }
            ArchSnap::Riscv { regs } => {
                for (l, &v) in regs.iter().enumerate() {
                    core.prf[core.rmt_state.rmt[l] as usize] = v;
                }
            }
        }
        core.next_seq = cp.executed();
        core.rob.reset_base(cp.executed());
        core.shadow_done = true;
        Ok(core)
    }

    // -- helpers ----------------------------------------------------

    fn src_value(&self, src: Option<u16>) -> u32 {
        match src {
            Some(p) => self.prf[p as usize],
            None => 0,
        }
    }

    fn srcs_ready(&self, uop: &UOp) -> bool {
        uop.srcs.iter().flatten().all(|&p| self.prf_ready.get(p as usize))
    }

    /// Physical register `p` just became ready: drain its wakeup list,
    /// setting the ready bit of every waiter whose last outstanding
    /// operand this was. Waiters are validated against the ROB by slot
    /// generation (the dispatch uid) — sequence numbers and slots are
    /// reused after recovery, generations never are.
    fn wake(&mut self, p: u16) {
        if self.sched.wakeup[p as usize].is_empty() {
            return;
        }
        let mut waiters = std::mem::take(&mut self.sched.wakeup[p as usize]);
        for w in waiters.drain(..) {
            let Some(slot) = self.rob.waiter_slot(w) else { continue };
            self.rob.pending[slot] = self.rob.pending[slot].saturating_sub(1);
            if self.rob.pending[slot] == 0 {
                self.sched.ready.set(slot);
            }
        }
        // Hand the drained allocation back to the (now empty) list.
        self.sched.wakeup[p as usize] = waiters;
    }

    fn mem_read(&self, width: MemWidth, addr: u32) -> u32 {
        let a = addr as usize;
        if a + width.bytes() as usize > self.mem.len() {
            return 0; // wrong-path wild access
        }
        match width {
            MemWidth::B => self.mem[a] as i8 as i32 as u32,
            MemWidth::Bu => u32::from(self.mem[a]),
            MemWidth::H => i32::from(i16::from_le_bytes([self.mem[a], self.mem[a + 1]])) as u32,
            MemWidth::Hu => u32::from(u16::from_le_bytes([self.mem[a], self.mem[a + 1]])),
            MemWidth::W => {
                u32::from_le_bytes([self.mem[a], self.mem[a + 1], self.mem[a + 2], self.mem[a + 3]])
            }
        }
    }

    fn mem_write(&mut self, width: MemWidth, addr: u32, val: u32) {
        let a = addr as usize;
        if a + width.bytes() as usize > self.mem.len() {
            return;
        }
        match width {
            MemWidth::B | MemWidth::Bu => self.mem[a] = val as u8,
            MemWidth::H | MemWidth::Hu => self.mem[a..a + 2].copy_from_slice(&(val as u16).to_le_bytes()),
            MemWidth::W => self.mem[a..a + 4].copy_from_slice(&val.to_le_bytes()),
        }
    }

    /// Raises a fatal trap with the current architectural context.
    /// The index is the retired-instruction count, which matches the
    /// functional emulators' dynamic instruction index at the same
    /// point, so differential tests can compare full [`Trap`]s.
    fn raise(&mut self, kind: TrapKind, pc: u32) {
        if self.fatal.is_none() {
            self.fatal =
                Some(Trap { kind, pc, index: self.stats.retired, cycle: Some(self.cycle) });
        }
    }

    // -- commit ------------------------------------------------------

    fn commit(&mut self) {
        for _ in 0..self.cfg.commit_width {
            if self.rob.is_empty() {
                return;
            }
            let hs = self.rob.head_slot();
            match self.rob.state[hs] {
                RState::Done => {
                    // Execution-time faults (wild/misaligned accesses)
                    // become precise here: the instruction reached the
                    // head un-squashed, so it really happens.
                    if let Some(kind) = self.rob.trap[hs] {
                        let pc = self.rob.uop[hs].pc;
                        self.raise(kind, pc);
                        return;
                    }
                    self.retire_head();
                    if self.halted.is_some() || self.fatal.is_some() {
                        return;
                    }
                }
                RState::Waiting if self.rob.uop[hs].is_trap() => {
                    // Fetch/decode/distance faults dispatched as trap
                    // micro-ops fire once they reach the head.
                    if let FuncOp::Trap(kind) = self.rob.uop[hs].func {
                        let pc = self.rob.uop[hs].pc;
                        self.raise(kind, pc);
                    }
                    return;
                }
                RState::Waiting if self.rob.uop[hs].is_sys() || self.rob.uop[hs].is_halt() => {
                    // Environment calls and HALT execute
                    // non-speculatively at the ROB head.
                    let uop = self.rob.uop[hs];
                    if uop.is_halt() {
                        self.rob.state[hs] = RState::Done;
                    } else if self.srcs_ready(&uop) {
                        let arg = self.src_value(uop.srcs[0]);
                        let code = match uop.func {
                            FuncOp::Sys { code: Some(c) } => c,
                            _ => self.src_value(uop.srcs[1]) as u16,
                        };
                        let result = match self.sys.apply(code, arg) {
                            Some(r) => r,
                            None => {
                                self.raise(TrapKind::UnknownSys { code }, uop.pc);
                                return;
                            }
                        };
                        if let Some(d) = uop.dst {
                            self.prf[d as usize] = result;
                            self.prf_ready.set(d as usize);
                            self.stats.events.prf_writes += 1;
                            self.wake(d);
                        }
                        self.rob.state[hs] = RState::Done;
                    }
                    return; // retires next cycle
                }
                _ => return,
            }
        }
    }

    /// Cross-validates one committing instruction against the shadow
    /// oracle emulator (and, for STRAIGHT, the architectural RP).
    /// Returns the sanitizer trap to raise if the machine diverged.
    ///
    /// The shadow emulator is constructed here, lazily, on the first
    /// retirement: nothing has retired yet at that point, so an
    /// emulator built from the initial image is exactly in sync.
    fn sanitize_retire(&mut self, uop: &UOp) -> Option<TrapKind> {
        // RP-vs-ROB consistency: the committed destination must be
        // exactly the architectural RP (the RP after the previously
        // retired instruction). Catches any desync between the rename
        // adders and the ROB's recovery bookkeeping.
        if self.cfg.isa == IsaKind::Straight {
            let expected = self.arch_rp.rp as u16;
            if let Some(got) = uop.dst {
                if got != expected {
                    return Some(TrapKind::RpDesync { expected, got });
                }
            }
        }
        if self.shadow_done {
            return None;
        }
        if self.shadow.is_none() {
            self.shadow = Some(match self.cfg.isa {
                IsaKind::Straight => Shadow::S(Box::new(StraightEmu::new(self.image.clone()))),
                IsaKind::Ss => Shadow::R(Box::new(RiscvEmu::new(self.image.clone()))),
            });
        }
        let committed = uop.dst.map(|d| self.prf[d as usize]);
        match &mut self.shadow {
            Some(Shadow::S(emu)) => {
                if emu.pc() != uop.pc {
                    return Some(TrapKind::OraclePcMismatch { expected: emu.pc() });
                }
                match emu.step() {
                    // The oracle observed an architectural trap the
                    // core sailed past.
                    Some(EmuExit::Trap(t)) => return Some(t.kind),
                    Some(_) => self.shadow_done = true,
                    None => {}
                }
                if !uop.is_halt() {
                    if let Some(got) = committed {
                        let expected = emu.last_result();
                        if got != expected {
                            return Some(TrapKind::OracleValueMismatch { expected, got });
                        }
                    }
                }
                if uop.is_sys() && emu.stdout() != self.sys.stdout {
                    return Some(TrapKind::OracleOutputDivergence {
                        core_len: self.sys.stdout.len() as u32,
                        oracle_len: emu.stdout().len() as u32,
                    });
                }
            }
            Some(Shadow::R(emu)) => {
                if emu.pc() != uop.pc {
                    return Some(TrapKind::OraclePcMismatch { expected: emu.pc() });
                }
                match emu.step() {
                    Some(EmuExit::Trap(t)) => return Some(t.kind),
                    Some(_) => self.shadow_done = true,
                    None => {}
                }
                if let (Some(got), Some(l)) = (committed, uop.logical_dst) {
                    let expected = emu.reg(Reg::new(l));
                    if got != expected {
                        return Some(TrapKind::OracleValueMismatch { expected, got });
                    }
                }
                if uop.is_sys() && emu.stdout() != self.sys.stdout {
                    return Some(TrapKind::OracleOutputDivergence {
                        core_len: self.sys.stdout.len() as u32,
                        oracle_len: emu.stdout().len() as u32,
                    });
                }
            }
            None => {}
        }
        None
    }

    /// Retires the ROB head entry (which commit() has verified is
    /// `Done` and trap-free).
    fn retire_head(&mut self) {
        let hs = self.rob.head_slot();
        let seq = self.rob.seq[hs];
        let uop = self.rob.uop[hs];
        let actual_taken = self.rob.actual_taken[hs];
        let pred_taken = self.rob.pred_taken[hs];
        self.rob.pop_front();
        if self.cfg.sanitizer {
            if let Some(kind) = self.sanitize_retire(&uop) {
                self.raise(kind, uop.pc);
                return;
            }
        }
        self.stats.bump_kind_idx(uop.kind);
        self.stats.events.rob_commits += 1;
        // Predictor training happens in order at retire.
        if uop.is_cond_branch() {
            self.bp.update(uop.pc, actual_taken, pred_taken);
        }
        if uop.is_store() {
            if let Some(e) = self.lsq.stores.remove(seq) {
                if let (Some(addr), Some(data)) = (e.addr, e.data) {
                    self.mem_write(e.width, addr, data);
                }
            }
        } else if uop.is_load() {
            if let Some(e) = self.lsq.loads.remove(seq) {
                if e.speculative && self.stats.retired.is_multiple_of(64) {
                    // Sparse decay: successful speculation slowly
                    // releases a trained dependence.
                    self.memdep.on_no_violation(e.pc);
                }
            }
        }
        // SS: the previous mapping's physical register is now free.
        if let Some(prev) = uop.prev_phys {
            self.rmt_state.freelist.push_back(prev);
            self.stats.events.freelist_ops += 1;
        }
        // Architectural STRAIGHT state shadows (used when a recovery
        // squashes the whole window).
        if self.cfg.isa == IsaKind::Straight {
            self.arch_rp = RpState { rp: uop.rp_after, sp: uop.sp_after };
        }
        if uop.is_halt() {
            self.halted = Some(self.sys.exit_code.unwrap_or(0));
        } else if self.sys.exit_code.is_some() {
            self.halted = self.sys.exit_code;
        }
    }

    // -- completion / writeback --------------------------------------

    fn complete(&mut self) {
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        self.inflight.drain_due(self.cycle, &mut due);
        if due.is_empty() {
            self.due_scratch = due;
            return;
        }
        due.sort_by_key(|f| f.seq);
        for &f in &due {
            // The entry may have been squashed (recovery leaves stale
            // events in the wheel; the sequence number may even have
            // been reissued to a different instruction since, which
            // the generation check rejects).
            let Some(slot) = self.rob.slot(f.seq) else { continue };
            if self.rob.gen[slot] != f.uid || self.rob.state[slot] != RState::Issued {
                continue;
            }
            let uop = self.rob.uop[slot];
            let s0 = self.src_value(uop.srcs[0]);
            let s1 = self.src_value(uop.srcs[1]);
            let mut actual_next = uop.pc.wrapping_add(4);
            let mut actual_taken = false;
            let mut trap: Option<TrapKind> = None;
            let result: u32 = match uop.func {
                FuncOp::Alu(op) => op.eval(s0, s1),
                FuncOp::AluImmRv(op, imm) => op.eval(s0, imm),
                FuncOp::AluImmS(op, imm) => op.eval_straight(s0, imm),
                FuncOp::Const(v) => v,
                FuncOp::Copy => s0,
                FuncOp::Load { width, .. } => {
                    let addr = self.lsq.loads.addr_of(f.seq).unwrap_or(0);
                    match check_load(width, addr, self.mem.len()) {
                        Some(kind) => {
                            trap = Some(kind);
                            0
                        }
                        None => match f.load_src {
                            Some(LoadSrc::Fwd(v)) => v,
                            _ => self.mem_read(width, addr),
                        },
                    }
                }
                FuncOp::Store { .. } => s1, // STRAIGHT: ST result is the stored value
                FuncOp::Branch { cond, target } => {
                    actual_taken = cond.eval(s0, s1);
                    actual_next = if actual_taken { target } else { uop.pc.wrapping_add(4) };
                    0
                }
                FuncOp::Jump { target, link } => {
                    actual_next = target;
                    if link {
                        uop.pc.wrapping_add(4)
                    } else {
                        0
                    }
                }
                FuncOp::JumpInd { offset, link } => {
                    let target = s0.wrapping_add(offset as u32) & !1;
                    actual_next = target;
                    if link {
                        uop.pc.wrapping_add(4)
                    } else {
                        target
                    }
                }
                FuncOp::Sys { .. } | FuncOp::Halt | FuncOp::Trap(_) => {
                    unreachable!("executed at commit")
                }
                FuncOp::Nop => 0,
            };
            if let Some(d) = uop.dst {
                self.prf[d as usize] = result;
                self.prf_ready.set(d as usize);
                self.stats.events.prf_writes += 1;
                self.stats.events.iq_wakeups += 1;
                self.wake(d);
            }
            self.rob.state[slot] = RState::Done;
            self.rob.actual_taken[slot] = actual_taken;
            if trap.is_some() {
                self.rob.trap[slot] = trap;
            }
            let predicted_next = self.rob.predicted_next[slot];
            let cp = self.rob.ras_cp[slot];
            if uop.is_control() {
                if uop.is_cond_branch() {
                    self.stats.branches += 1;
                }
                if actual_next != predicted_next {
                    if uop.is_cond_branch() {
                        self.stats.branch_mispredicts += 1;
                    } else {
                        self.stats.indirect_mispredicts += 1;
                    }
                    self.recover(f.seq, actual_next, Some(cp));
                }
            }
        }
        self.due_scratch = due;
    }

    // -- issue ------------------------------------------------------

    fn issue(&mut self) {
        let mut budget_total = self.cfg.issue_width;
        let mut budget = [
            self.cfg.units.alu,
            self.cfg.units.mul,
            self.cfg.units.div,
            self.cfg.units.bc,
            self.cfg.units.mem,
        ];
        let unit_idx = |u: ExecUnit| match u {
            ExecUnit::Alu => 0usize,
            ExecUnit::Mul => 1,
            ExecUnit::Div => 2,
            ExecUnit::Branch => 3,
            ExecUnit::Mem => 4,
        };
        // Select walks only operand-ready entries, oldest first: the
        // ready bitset is enumerated in ring order from the ROB head
        // slot, which is exactly ascending sequence-number order
        // (slots are `seq mod capacity` and the live window is
        // contiguous), so the issue order and every stat bump match
        // the old sorted ready queue.
        let mut candidates = std::mem::take(&mut self.sched.scratch);
        candidates.clear();
        if !self.rob.is_empty() {
            self.sched.ready.collect_ring_order(self.rob.head_slot(), &mut candidates);
        }
        for &slot_u in &candidates {
            if budget_total == 0 {
                break;
            }
            let slot = slot_u as usize;
            let seq = self.rob.seq[slot];
            // Defensive staleness check, mirroring the old per-seq
            // revalidation (a ready bit never legitimately outlives
            // its entry: recovery and issue both clear it).
            if self.rob.slot(seq) != Some(slot) || self.rob.state[slot] != RState::Waiting {
                self.sched.ready.clear(slot);
                continue;
            }
            // Cheap rejections read single columns; the micro-op
            // payload is only copied out for an entry that passes.
            let ui = unit_idx(self.rob.uop[slot].unit);
            if budget[ui] == 0 {
                continue;
            }
            let uop = self.rob.uop[slot];
            // Unpipelined divider occupancy.
            let mut div_slot = None;
            if uop.unit == ExecUnit::Div {
                match self.div_busy_until.iter().position(|&b| b <= self.cycle) {
                    Some(k) => div_slot = Some(k),
                    None => continue,
                }
            }
            let mut load_src = None;
            let latency;
            if uop.is_load() {
                match self.try_issue_load(seq, &uop) {
                    Some((lat, src)) => {
                        latency = lat;
                        load_src = Some(src);
                    }
                    None => continue, // blocked on the LSQ; retry next cycle
                }
            } else if uop.is_store() {
                // Stores issue their address as soon as the base
                // register is ready (split AGU), shrinking the window
                // in which younger loads see unknown store addresses:
                // a store enters the ready queue on its base operand
                // alone and picks up the data operand separately.
                let addr_known = self.lsq.stores.addr_known(seq);
                if !addr_known {
                    let violation = self.issue_store_addr(seq, &uop);
                    if violation {
                        break; // the recovery consumed this cycle
                    }
                    // The address generation consumes this issue slot.
                    budget[ui] -= 1;
                    budget_total -= 1;
                    self.stats.events.fu_ops += 1;
                    if let Some(p) = uop.srcs[1].filter(|&p| !self.prf_ready.get(p as usize)) {
                        // Data not ready yet: leave select and wait on
                        // the data tag alone.
                        self.rob.pending[slot] = 1;
                        self.sched.ready.clear(slot);
                        self.sched.wakeup[p as usize]
                            .push(SlotHandle { slot: slot_u, gen: self.rob.gen[slot] });
                        continue;
                    }
                    self.record_store_data(seq, &uop);
                    self.rob.state[slot] = RState::Issued;
                    self.rob.in_iq.clear(slot);
                    self.sched.ready.clear(slot);
                    self.sched.occupancy -= 1;
                    self.inflight.push(
                        self.cycle,
                        Inflight {
                            seq,
                            uid: self.rob.gen[slot],
                            done_at: self.cycle + 1,
                            load_src: None,
                        },
                    );
                    continue;
                }
                // Address already generated (a violation recovery cut
                // phase A short); the data operand may still be pending.
                if let Some(p) = uop.srcs[1].filter(|&p| !self.prf_ready.get(p as usize)) {
                    self.rob.pending[slot] = 1;
                    self.sched.ready.clear(slot);
                    self.sched.wakeup[p as usize]
                        .push(SlotHandle { slot: slot_u, gen: self.rob.gen[slot] });
                    continue;
                }
                self.record_store_data(seq, &uop);
                latency = 1;
            } else {
                latency = uop.latency;
            }
            if let Some(k) = div_slot {
                self.div_busy_until[k] = self.cycle + u64::from(latency);
            }
            budget[ui] -= 1;
            budget_total -= 1;
            self.stats.events.fu_ops += 1;
            self.stats.events.prf_reads += uop.srcs.iter().flatten().count() as u64;
            self.rob.state[slot] = RState::Issued;
            self.rob.in_iq.clear(slot);
            self.sched.ready.clear(slot);
            self.sched.occupancy -= 1;
            self.inflight.push(
                self.cycle,
                Inflight {
                    seq,
                    uid: self.rob.gen[slot],
                    done_at: self.cycle + u64::from(latency),
                    load_src,
                },
            );
        }
        self.sched.scratch = candidates;
    }

    /// Attempts to issue a load: address generation, LSQ search,
    /// forwarding, and memory-dependence speculation. Returns the
    /// latency and value source, or `None` to retry later.
    fn try_issue_load(&mut self, seq: u64, uop: &UOp) -> Option<(u32, LoadSrc)> {
        let FuncOp::Load { width, offset } = uop.func else { unreachable!() };
        let addr = self.src_value(uop.srcs[0]).wrapping_add(offset as u32);
        self.stats.events.lsq_searches += 1;
        // The store ring is ascending, so older stores are a prefix.
        let scan = self.lsq.stores.scan_older_stores(seq, addr, width);
        if scan.blocked {
            return None;
        }
        if scan.unknown_older && self.memdep.predict_dependent(uop.pc) {
            // Predicted dependent: even with a forwardable match, an
            // unknown-address store in between could be the real
            // producer — wait for all older store addresses.
            return None;
        }
        // Record the load address for later violation checks.
        self.lsq.loads.set_load_exec(seq, addr, scan.unknown_older, scan.best.map(|(bs, _)| bs));
        match scan.best {
            Some((_, data)) => Some((2, LoadSrc::Fwd(data))),
            None => {
                let lat = 1 + self.hier.data_access(addr);
                Some((lat, LoadSrc::Mem))
            }
        }
    }

    /// Generates a store's address, detecting memory-order violations
    /// by younger speculatively-executed loads. Returns true when a
    /// violation recovery was triggered.
    fn issue_store_addr(&mut self, seq: u64, uop: &UOp) -> bool {
        let FuncOp::Store { width, offset } = uop.func else { unreachable!() };
        let addr = self.src_value(uop.srcs[0]).wrapping_add(offset as u32);
        self.lsq.stores.set_addr(seq, addr);
        // A wild or misaligned store address is recorded on the ROB
        // entry and raised precisely if the store reaches the head.
        if let Some(kind) = check_store(width, addr, self.mem.len()) {
            if let Some(slot) = self.rob.slot(seq) {
                self.rob.trap[slot] = Some(kind);
            }
        }
        self.stats.events.lsq_searches += 1;
        // A younger load that already executed reading this address
        // got stale data. The load ring is ascending, so the first
        // match is the oldest victim.
        if let Some((load_seq, load_pc)) = self.lsq.loads.find_violation_victim(seq, addr, width) {
            // Only an actual executed load matters; it re-executes.
            self.violation_log.push((load_pc, uop.pc));
            self.stats.memory_violations += 1;
            self.memdep.on_violation(load_pc);
            self.recover(load_seq - 1, load_pc, None);
            return true;
        }
        false
    }

    /// Records a store's data once its value operand is ready.
    fn record_store_data(&mut self, seq: u64, uop: &UOp) {
        let data = self.src_value(uop.srcs[1]);
        self.lsq.stores.set_data(seq, data);
    }

    // -- recovery ----------------------------------------------------

    /// Squashes everything younger than `boundary_seq` and refetches
    /// from `new_pc`. This is the mechanism whose cost separates the
    /// two machines.
    fn recover(&mut self, boundary_seq: u64, new_pc: u32, ras_cp: Option<RasCheckpoint>) {
        let front_seq = self.rob.front_seq().unwrap_or(boundary_seq + 1);
        let keep = ((boundary_seq + 1).saturating_sub(front_seq) as usize).min(self.rob.len());
        let n = (self.rob.len() - keep) as u64;
        self.stats.squashed += n;
        let squash_begin = front_seq + keep as u64;
        let squash_end = front_seq + self.rob.len() as u64;
        // The squashed tail is walked in place — no copies — and then
        // truncated away. Wakeup subscriptions of squashed entries are
        // deliberately NOT unhooked: a stale waiter is dead weight in
        // its list until the tag's next completion drains it, and the
        // ROB rejects it by slot generation (truncation invalidates
        // the generations of the squashed range).
        match self.cfg.isa {
            IsaKind::Ss => {
                // Walk the squashed entries from the tail, restoring
                // previous mappings and refreeing destinations.
                for s in (squash_begin..squash_end).rev() {
                    self.stats.events.rob_walk_reads += 1;
                    let u = &self.rob.uop[self.rob.slot_of(s)];
                    if let (Some(l), Some(prev), Some(d)) = (u.logical_dst, u.prev_phys, u.dst) {
                        self.rmt_state.rmt[l as usize] = prev;
                        self.rmt_state.freelist.push_back(d);
                        self.stats.events.freelist_ops += 1;
                    }
                }
                let walk_cycles = if self.cfg.ideal_recovery {
                    0
                } else {
                    n.div_ceil(u64::from(self.cfg.walk_width()))
                };
                self.rename_stall_until = self.rename_stall_until.max(self.cycle + walk_cycles);
                self.stats.recovery_stall_cycles += walk_cycles;
            }
            IsaKind::Straight => {
                // One ROB-entry read restores RP and SP (Figure 4).
                let restore = if keep > 0 {
                    let u = &self.rob.uop[self.rob.slot_of(squash_begin - 1)];
                    RpState { rp: u.rp_after, sp: u.sp_after }
                } else {
                    self.arch_rp
                };
                self.rp_state = restore;
                for s in squash_begin..squash_end {
                    if let Some(d) = self.rob.uop[self.rob.slot_of(s)].dst {
                        self.prf_ready.set(d as usize);
                    }
                }
                let stall = u64::from(!self.cfg.ideal_recovery);
                self.rename_stall_until = self.rename_stall_until.max(self.cycle + stall);
                self.stats.recovery_stall_cycles += stall;
            }
        }
        // The ROB tail pointer moves back: squashed sequence numbers
        // are reused, keeping ROB sequence numbers contiguous.
        self.next_seq = boundary_seq + 1;
        // Squashed entries still holding scheduler slots give them
        // back, and their ready bits are cleared before the slots can
        // be recycled.
        for s in squash_begin..squash_end {
            let slot = self.rob.slot_of(s);
            if self.rob.in_iq.get(slot) {
                self.sched.occupancy -= 1;
            }
            self.sched.ready.clear(slot);
        }
        self.rob.truncate(keep);
        // Squashed in-flight completions are NOT removed from the
        // timing wheel: their events stay filed and are rejected at
        // drain time by the generation check (truncate invalidated
        // the squashed generations), so recovery stays O(squashed)
        // instead of O(inflight).
        self.lsq.squash_younger(boundary_seq);
        self.front_q.clear();
        self.bp.recover();
        if let Some(cp) = ras_cp {
            self.ras.restore(cp);
        }
        self.fetch_pc = new_pc;
        self.fetch_faulted = false;
        self.fetch_stall_until = self.fetch_stall_until.max(self.cycle + 1);
    }

    // -- rename / dispatch -------------------------------------------

    fn rename_dispatch(&mut self) {
        if self.halted.is_some() {
            return;
        }
        if self.cycle < self.rename_stall_until {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            let Some(&front) = self.front_q.front() else { return };
            if front.ready_at > self.cycle {
                return;
            }
            if self.rob.len() >= self.cfg.rob_capacity as usize
                || self.sched.occupancy >= self.cfg.iq_entries as usize
            {
                self.stats.backpressure_stall_cycles += 1;
                return;
            }
            // LSQ capacity.
            let (is_load, is_store) = match front.raw {
                RawInst::S(i) => (matches!(i, straight_isa::Inst::Ld { .. }), matches!(i, straight_isa::Inst::St { .. })),
                RawInst::R(i) => {
                    (matches!(i, straight_riscv::RvInst::Load { .. }), matches!(i, straight_riscv::RvInst::Store { .. }))
                }
                RawInst::Fault(_) => (false, false),
            };
            if is_load && self.lsq.loads.len() >= self.cfg.lsq_ld as usize {
                self.stats.backpressure_stall_cycles += 1;
                return;
            }
            if is_store && self.lsq.stores.len() >= self.cfg.lsq_st as usize {
                self.stats.backpressure_stall_cycles += 1;
                return;
            }
            // Rename.
            let uop = match (self.cfg.isa, front.raw) {
                (_, RawInst::Fault(kind)) => {
                    UOp::trap(front.pc, kind, self.rp_state.rp, self.rp_state.sp)
                }
                (IsaKind::Straight, RawInst::S(inst)) => {
                    // Hazard check at the RP adders: a distance
                    // reaching past the start of execution references
                    // a producer that never existed (`next_seq` is the
                    // dynamic index this instruction will get). Trap
                    // precisely instead of reading ring garbage.
                    let sources = inst.sources();
                    let oob =
                        sources.into_iter().flatten().find(|d| u64::from(d.get()) > self.next_seq);
                    match oob {
                        Some(d) => UOp::trap(
                            front.pc,
                            TrapKind::DistanceOutOfRange { dist: d.get(), executed: self.next_seq },
                            self.rp_state.rp,
                            self.rp_state.sp,
                        ),
                        None => {
                            self.stats.events.rp_adds +=
                                1 + sources.iter().flatten().count() as u64;
                            rename_straight(inst, front.pc, &mut self.rp_state, self.cfg.phys_regs)
                        }
                    }
                }
                (IsaKind::Ss, RawInst::R(inst)) => {
                    let nsrc = inst.sources().iter().flatten().count() as u64;
                    match rename_riscv(inst, front.pc, &mut self.rmt_state) {
                        Some(u) => {
                            self.stats.events.rmt_reads += nsrc + u64::from(u.dst.is_some());
                            self.stats.events.rmt_writes += u64::from(u.dst.is_some());
                            self.stats.events.freelist_ops += u64::from(u.dst.is_some());
                            u
                        }
                        None => {
                            self.stats.freelist_stall_cycles += 1;
                            return;
                        }
                    }
                }
                // Core::new validates the image's ISA tag against the
                // machine and fetch decodes with the machine's own
                // decoder, so a cross-ISA instruction cannot appear.
                (IsaKind::Straight, RawInst::R(_)) | (IsaKind::Ss, RawInst::S(_)) => {
                    unreachable!("Core::new validates the image ISA")
                }
            };
            self.front_q.pop_front();
            self.stats.events.decoded += 1;
            if let Some(d) = uop.dst {
                self.prf_ready.clear(d as usize);
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            let uid = self.next_uid;
            self.next_uid += 1;
            let goes_to_iq = !(uop.is_sys() || uop.is_halt() || uop.is_trap());
            if uop.is_load() || uop.is_store() {
                let width = match uop.func {
                    FuncOp::Load { width, .. } | FuncOp::Store { width, .. } => width,
                    _ => MemWidth::W,
                };
                if uop.is_store() {
                    self.lsq.stores.push_back(seq, uop.pc, width);
                } else {
                    self.lsq.loads.push_back(seq, uop.pc, width);
                }
            }
            let slot = self.rob.push(seq, uid, uop);
            self.rob.predicted_next[slot] = front.predicted_next;
            self.rob.pred_taken[slot] = front.pred_taken;
            self.rob.ras_cp[slot] = front.ras_cp;
            // Subscribe to the wakeup list of each not-yet-ready
            // source; an entry with none gets its ready bit set
            // immediately. Stores watch their base operand only — the
            // split AGU lets the address issue before the data is
            // ready, and the data tag is picked up at that point.
            let mut pending = 0u8;
            if goes_to_iq {
                let watched: &[Option<u16>] =
                    if uop.is_store() { &uop.srcs[..1] } else { &uop.srcs[..] };
                for &p in watched.iter().flatten() {
                    if !self.prf_ready.get(p as usize) {
                        self.sched.wakeup[p as usize].push(SlotHandle { slot: slot as u32, gen: uid });
                        pending += 1;
                    }
                }
                if pending == 0 {
                    self.sched.ready.set(slot);
                }
                self.sched.occupancy += 1;
                self.stats.events.iq_inserts += 1;
                self.rob.in_iq.set(slot);
            }
            self.rob.pending[slot] = pending;
            self.stats.events.rob_writes += 1;
        }
    }

    // -- fetch --------------------------------------------------------

    fn fetch(&mut self) {
        if self.halted.is_some() || self.fetch_faulted || self.cycle < self.fetch_stall_until {
            return;
        }
        let capacity = (self.cfg.fetch_width * (self.cfg.frontend_latency + 2)) as usize;
        if self.front_q.len() >= capacity {
            return;
        }
        let mut pc = self.fetch_pc;
        // Instruction-cache access for the group's first line; a miss
        // stalls fetch (the hit latency is folded into the front-end
        // depth).
        let extra = self.hier.fetch_access(pc);
        if extra > 0 {
            self.fetch_stall_until = self.cycle + u64::from(extra);
            return;
        }
        let delay = if self.cfg.ideal_recovery { 1 } else { u64::from(self.cfg.frontend_latency) };
        for _ in 0..self.cfg.fetch_width {
            if self.front_q.len() >= capacity {
                break;
            }
            // A fetch that leaves the code segment or an undecodable
            // word enters the pipe as a fault entry; fetch then parks
            // until a recovery redirects it (on the correct path the
            // fault commits and ends the simulation).
            let (raw, info) = if pc < self.image.code_base || !pc.is_multiple_of(4) {
                (RawInst::Fault(TrapKind::FetchFault), ControlInfo::None)
            } else {
                let idx = ((pc - self.image.code_base) / 4) as usize;
                match self.predecoded.get(idx) {
                    // `control` is precomputed in lockstep with
                    // `predecoded` (faults classify as None).
                    Some(&r) => (r, self.control[idx]),
                    None => (RawInst::Fault(TrapKind::FetchFault), ControlInfo::None),
                }
            };
            let faulted = matches!(raw, RawInst::Fault(_));
            let ras_cp = self.ras.checkpoint();
            let (predicted_next, pred_taken) = match info {
                ControlInfo::None => (pc.wrapping_add(4), false),
                ControlInfo::CondBranch { target } => {
                    let mut taken = self.bp.predict(pc);
                    if self.force_flip_branch {
                        // Injected fault: invert this prediction.
                        taken = !taken;
                        self.force_flip_branch = false;
                    }
                    (if taken { target } else { pc.wrapping_add(4) }, taken)
                }
                ControlInfo::DirectJump { target, is_call } => {
                    if is_call {
                        self.ras.push(pc.wrapping_add(4));
                    }
                    (target, true)
                }
                ControlInfo::IndirectJump { is_call, is_return } => {
                    let t = if is_return { self.ras.pop() } else { pc.wrapping_add(4) };
                    if is_call {
                        self.ras.push(pc.wrapping_add(4));
                    }
                    (t, true)
                }
            };
            self.front_q.push_back(FrontEntry {
                ready_at: self.cycle + delay,
                pc,
                raw,
                predicted_next,
                pred_taken,
                ras_cp,
            });
            self.stats.events.fetched += 1;
            if faulted {
                self.fetch_faulted = true;
                break;
            }
            let sequential = predicted_next == pc.wrapping_add(4);
            pc = predicted_next;
            if !sequential {
                break; // redirect: next group starts at the target
            }
        }
        if !self.fetch_faulted {
            self.fetch_pc = pc;
        }
    }

    // -- fault injection ----------------------------------------------

    /// Schedules a deterministic fault to be injected at the start of
    /// `at_cycle` (see [`FaultKind`] for the menu).
    pub fn schedule_fault(&mut self, at_cycle: u64, kind: FaultKind) {
        self.pending_faults.push((at_cycle, kind));
    }

    /// Number of scheduled faults that have been applied so far.
    #[must_use]
    pub fn faults_applied(&self) -> u32 {
        self.faults_applied
    }

    /// True when the hazard sanitizer's shadow emulator exists. It is
    /// built lazily at the first retirement with `cfg.sanitizer` set,
    /// so default runs never clone the image into a shadow emulator.
    #[must_use]
    pub fn shadow_allocated(&self) -> bool {
        self.shadow.is_some()
    }

    /// Rewinds the core to its post-construction state, reusing the
    /// slab and register-file allocations: memory is reloaded from the
    /// image, predictors and caches are rebuilt, and every pipeline
    /// structure is emptied. A subsequent run is bit-identical to a
    /// fresh [`Core::new`] run of the same image and configuration.
    pub fn reset(&mut self) {
        self.mem.fill(0);
        self.image.load_into(&mut self.mem);
        self.hier = Hierarchy::new(self.cfg.hierarchy);
        self.bp = build(self.cfg.predictor);
        self.ras = Ras::new();
        self.memdep = StoreSets::new();
        self.prf.fill(0);
        self.rmt_state = RmtState::new(self.cfg.phys_regs);
        self.prf[self.rmt_state.rmt[2] as usize] = STACK_TOP;
        self.rmt_state.freelist.make_contiguous();
        for p in 0..self.prf.len() {
            self.prf_ready.set(p);
        }
        self.rp_state = RpState { rp: 0, sp: STACK_TOP };
        self.arch_rp = RpState { rp: 0, sp: STACK_TOP };
        self.rob.clear();
        self.sched.clear();
        self.inflight.clear();
        self.due_scratch.clear();
        self.lsq.clear();
        self.front_q.clear();
        self.next_seq = 0;
        self.next_uid = 0;
        self.fetch_pc = self.image.entry;
        self.fetch_stall_until = 0;
        self.fetch_faulted = false;
        self.rename_stall_until = 0;
        self.div_busy_until.fill(0);
        self.cycle = 0;
        self.last_commit_cycle = 0;
        self.sys = SysState::default();
        self.stats = SimStats::default();
        self.halted = None;
        self.fatal = None;
        self.watchdog_report = None;
        self.shadow = None;
        self.shadow_done = false;
        self.pending_faults.clear();
        self.faults_applied = 0;
        self.force_flip_branch = false;
        self.violation_log.clear();
        #[cfg(feature = "stage-profile")]
        {
            self.stage_ns = [0; 5];
        }
    }

    fn apply_due_faults(&mut self) {
        if self.pending_faults.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.pending_faults.len() {
            if self.pending_faults[i].0 <= self.cycle {
                let (_, kind) = self.pending_faults.remove(i);
                self.apply_fault(kind);
            } else {
                i += 1;
            }
        }
    }

    fn apply_fault(&mut self, kind: FaultKind) {
        self.faults_applied += 1;
        match kind {
            FaultKind::PrfBitFlip { reg, bit } => {
                let r = reg as usize % self.prf.len();
                self.prf[r] ^= 1u32 << (bit % 32);
            }
            FaultKind::ForceMispredict => self.force_flip_branch = true,
            FaultKind::RasCorrupt { slots } => {
                for i in 0..slots {
                    self.ras.push(0xdead_0000u32.wrapping_add(i * 4));
                }
            }
            FaultKind::LoseCompletion => self.inflight.clear(),
        }
    }

    // -- watchdog -----------------------------------------------------

    fn watchdog_fire(&mut self) {
        let stalled = self.cycle - self.last_commit_cycle;
        let head = (!self.rob.is_empty()).then(|| {
            let hs = self.rob.head_slot();
            let state = match self.rob.state[hs] {
                RState::Waiting => "waiting",
                RState::Issued => "issued",
                RState::Done => "done",
            };
            (self.rob.seq[hs], self.rob.uop[hs].pc, state)
        });
        let report = WatchdogReport {
            stalled_cycles: stalled,
            cycle: self.cycle,
            retired: self.stats.retired,
            rob_head: head,
            rob_len: self.rob.len(),
            iq_len: self.sched.occupancy,
            inflight_len: self.inflight.len(),
            lsq_len: self.lsq.len(),
            front_len: self.front_q.len(),
            fetch_pc: self.fetch_pc,
            fetch_stall_until: self.fetch_stall_until,
            rename_stall_until: self.rename_stall_until,
        };
        let pc = head.map_or(self.fetch_pc, |(_, pc, _)| pc);
        self.watchdog_report = Some(report);
        self.raise(TrapKind::Watchdog { stalled_cycles: stalled }, pc);
    }

    // -- driver -------------------------------------------------------

    /// One-line state summary for debugging stalls.
    #[must_use]
    pub fn debug_snapshot(&self) -> String {
        let head = (!self.rob.is_empty()).then(|| {
            let hs = self.rob.head_slot();
            let uop = self.rob.uop[hs];
            format!(
                "head seq={} pc={:#x} {:?} state={:?} srcs_ready={}",
                self.rob.seq[hs],
                uop.pc,
                uop.func,
                self.rob.state[hs],
                self.srcs_ready(&uop)
            )
        });
        format!(
            "cyc={} rob={} iq={} infl={} lsq={} frontq={} front_rdy={:?} front_pc={:?} fetch_pc={:#x} fstall@{} rstall@{} retired={} | {:?}",
            self.cycle,
            self.rob.len(),
            self.sched.occupancy,
            self.inflight.len(),
            self.lsq.len(),
            self.front_q.len(),
            self.front_q.front().map(|f| f.ready_at),
            self.front_q.front().map(|f| format!("{:#x}", f.pc)),
            self.fetch_pc,
            self.fetch_stall_until,
            self.rename_stall_until,
            self.stats.retired,
            head
        )
    }

    /// Runs one pipeline stage, charging its host time to `slot` when
    /// the `stage-profile` feature is enabled.
    #[inline]
    fn run_stage(&mut self, slot: usize, f: impl FnOnce(&mut Core)) {
        #[cfg(feature = "stage-profile")]
        {
            let t0 = std::time::Instant::now();
            f(self);
            self.stage_ns[slot] =
                self.stage_ns[slot].saturating_add(t0.elapsed().as_nanos() as u64);
        }
        #[cfg(not(feature = "stage-profile"))]
        {
            let _ = slot;
            f(self);
        }
    }

    /// Host-time nanoseconds spent in each pipeline stage so far,
    /// labeled by [`STAGE_NAMES`].
    #[cfg(feature = "stage-profile")]
    #[must_use]
    pub fn stage_profile(&self) -> [(&'static str, u64); 5] {
        let mut out = [("", 0u64); 5];
        for (i, name) in STAGE_NAMES.iter().enumerate() {
            out[i] = (name, self.stage_ns[i]);
        }
        out
    }

    /// Advances one cycle.
    pub fn step(&mut self) {
        self.apply_due_faults();
        let retired_before = self.stats.retired;
        self.run_stage(0, Core::commit);
        if self.halted.is_some() || self.fatal.is_some() {
            return;
        }
        self.run_stage(1, Core::complete);
        self.run_stage(2, Core::issue);
        self.run_stage(3, Core::rename_dispatch);
        self.run_stage(4, Core::fetch);
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        if self.stats.retired != retired_before {
            self.last_commit_cycle = self.cycle;
        } else if self.cycle - self.last_commit_cycle > self.cfg.watchdog_limit {
            self.watchdog_fire();
        }
    }

    fn exit(&self) -> SimExit {
        if let Some(code) = self.halted {
            SimExit::Completed { code }
        } else if let Some(t) = self.fatal {
            SimExit::Trap(t)
        } else {
            SimExit::CycleLimit
        }
    }

    /// Runs in place to completion (or trap, watchdog, or the cycle
    /// budget), leaving the core inspectable.
    pub fn run_in_place(&mut self, max_cycles: u64) -> SimResult {
        while self.halted.is_none() && self.fatal.is_none() && self.cycle < max_cycles {
            self.step();
        }
        self.stats.mem = self.hier.stats();
        SimResult {
            exit: self.exit(),
            exit_code: self.halted,
            watchdog: self.watchdog_report.clone(),
            stdout: self.sys.stdout.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Runs in place until `max_retired` instructions have committed
    /// (or completion, trap, watchdog, or the cycle budget). A stop at
    /// the retire budget reports [`SimExit::CycleLimit`] — no separate
    /// exit variant exists, and sampled-interval callers distinguish
    /// the cases by the retired count in the stats.
    pub fn run_retired(&mut self, max_retired: u64, max_cycles: u64) -> SimResult {
        while self.halted.is_none()
            && self.fatal.is_none()
            && self.cycle < max_cycles
            && self.stats.retired < max_retired
        {
            self.step();
        }
        self.stats.mem = self.hier.stats();
        SimResult {
            exit: self.exit(),
            exit_code: self.halted,
            watchdog: self.watchdog_report.clone(),
            stdout: self.sys.stdout.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Runs to completion (or trap, watchdog, or the cycle budget).
    #[must_use]
    pub fn run(mut self, max_cycles: u64) -> SimResult {
        while self.halted.is_none() && self.fatal.is_none() && self.cycle < max_cycles {
            self.step();
        }
        self.stats.mem = self.hier.stats();
        SimResult {
            exit: self.exit(),
            exit_code: self.halted,
            watchdog: self.watchdog_report,
            stdout: self.sys.stdout,
            stats: self.stats,
        }
    }
}

/// Simulates a linked image on the given machine.
///
/// # Errors
///
/// Returns [`CoreError`] when the machine cannot execute the image at
/// all (ISA mismatch, undersized register file).
pub fn simulate(image: Image, cfg: MachineConfig, max_cycles: u64) -> Result<SimResult, CoreError> {
    Ok(Core::new(image, cfg)?.run(max_cycles))
}

