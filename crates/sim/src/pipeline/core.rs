//! The shared out-of-order core.
//!
//! One machine model executes both ISAs: fetch (with direction
//! prediction and a return-address stack), a latency-modeled front-end
//! pipe, an ISA-specific rename stage (RAM-based RMT + free list for
//! SS, the RP adders for STRAIGHT — Figure 3), dispatch into a
//! unified scheduler, age-ordered issue over the Table-I functional
//! units, a load/store queue with store-to-load forwarding and
//! memory-dependence speculation, and in-order commit from the ROB.
//!
//! Recovery is where the two machines differ (Figure 4): SS restores
//! the RMT by walking squashed ROB entries at front-end width per
//! cycle and stalls rename until the walk completes; STRAIGHT restores
//! RP/SP from a single ROB entry in one cycle.
//!
//! Faults are precise: fetch/decode faults, out-of-range operand
//! distances, and wild/misaligned memory accesses travel through the
//! pipeline as typed [`TrapKind`]s attached to their instruction and
//! are raised only when that instruction reaches the ROB head —
//! wrong-path faults are squashed like any other speculation. A
//! forward-progress watchdog aborts (with a structured
//! [`WatchdogReport`]) if commit stops, and the opt-in hazard
//! sanitizer cross-validates every retired instruction against a
//! shadow functional emulator.

use std::collections::VecDeque;
use std::fmt;

use straight_asm::{Image, ImageIsa, MEM_SIZE, STACK_TOP};
use straight_isa::{MemWidth, Trap, TrapKind};
use straight_riscv::Reg;

use crate::emu::sys::SysState;
use crate::emu::{EmuExit, RiscvEmu, StraightEmu};
use crate::inject::FaultKind;
use crate::mem::Hierarchy;
use crate::predict::{build, DirectionPredictor, Ras, RasCheckpoint, StoreSets};

use super::config::{IsaKind, MachineConfig};
use super::stats::{SimExit, SimResult, SimStats, WatchdogReport};
use super::uop::{
    rename_riscv, rename_straight, ControlInfo, ExecUnit, FuncOp, RawInst, RmtState, RpState, UOp,
};

/// Default cycle budget for [`simulate`].
pub const DEFAULT_MAX_CYCLES: u64 = 2_000_000_000;

/// A configuration/image mismatch detected while constructing a
/// [`Core`] — the machine cannot meaningfully execute at all, so this
/// is an error at build time rather than a [`Trap`] at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreError {
    /// The image's ISA does not match the machine's front-end model.
    IsaMismatch {
        /// The machine's front-end model.
        machine: IsaKind,
        /// The ISA the image was linked for.
        image: ImageIsa,
    },
    /// The physical register file cannot hold the architectural state
    /// (RV32 needs all 32 logical mappings plus at least one free
    /// register to rename into).
    TooFewPhysRegs {
        /// The configured register-file size.
        phys_regs: u32,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::IsaMismatch { machine, image } => {
                write!(f, "machine front-end {machine:?} cannot execute a {image} image")
            }
            CoreError::TooFewPhysRegs { phys_regs } => {
                write!(f, "{phys_regs} physical registers (need at least 33)")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RState {
    /// Dispatched, waiting in the scheduler (or at the ROB head for
    /// `SYS`/`HALT`/trap micro-ops).
    Waiting,
    /// Issued to a functional unit.
    Issued,
    /// Completed.
    Done,
}

#[derive(Debug, Clone)]
struct RobEntry {
    seq: u64,
    uop: UOp,
    state: RState,
    predicted_next: u32,
    pred_taken: bool,
    actual_taken: bool,
    ras_cp: RasCheckpoint,
    /// A typed fault observed while executing this entry (wild or
    /// misaligned memory access); raised when the entry reaches the
    /// ROB head, squashed with the entry otherwise.
    trap: Option<TrapKind>,
}

#[derive(Debug, Clone, Copy)]
enum LoadSrc {
    /// Read functional memory at completion.
    Mem,
    /// Forwarded from an in-flight store.
    Fwd(u32),
}

#[derive(Debug, Clone, Copy)]
struct Inflight {
    seq: u64,
    done_at: u64,
    load_src: Option<LoadSrc>,
}

#[derive(Debug, Clone, Copy)]
struct LsqEntry {
    seq: u64,
    is_store: bool,
    pc: u32,
    width: MemWidth,
    addr: Option<u32>,
    data: Option<u32>,
    /// Load executed while older store addresses were unknown.
    speculative: bool,
    /// For executed loads: sequence number of the store the value was
    /// forwarded from (`None` = read from memory).
    fwd_src: Option<u64>,
}

#[derive(Debug, Clone)]
struct FrontEntry {
    ready_at: u64,
    pc: u32,
    raw: RawInst,
    predicted_next: u32,
    pred_taken: bool,
    ras_cp: RasCheckpoint,
}

/// The hazard sanitizer's oracle: a shadow functional emulator stepped
/// once per retired instruction.
enum Shadow {
    S(Box<StraightEmu>),
    R(Box<RiscvEmu>),
}

fn check_load(width: MemWidth, addr: u32, mem_len: usize) -> Option<TrapKind> {
    if !addr.is_multiple_of(width.bytes()) {
        Some(TrapKind::MisalignedLoad { addr, width })
    } else if addr as usize + width.bytes() as usize > mem_len {
        Some(TrapKind::WildLoad { addr, width })
    } else {
        None
    }
}

fn check_store(width: MemWidth, addr: u32, mem_len: usize) -> Option<TrapKind> {
    if !addr.is_multiple_of(width.bytes()) {
        Some(TrapKind::MisalignedStore { addr, width })
    } else if addr as usize + width.bytes() as usize > mem_len {
        Some(TrapKind::WildStore { addr, width })
    } else {
        None
    }
}

/// The cycle-accurate core.
pub struct Core {
    cfg: MachineConfig,
    image: Image,
    mem: Vec<u8>,
    hier: Hierarchy,
    bp: Box<dyn DirectionPredictor>,
    ras: Ras,
    memdep: StoreSets,
    prf: Vec<u32>,
    prf_ready: Vec<bool>,
    rp_state: RpState,
    arch_rp: RpState,
    rmt_state: RmtState,
    rob: VecDeque<RobEntry>,
    next_seq: u64,
    iq: Vec<u64>,
    inflight: Vec<Inflight>,
    lsq: Vec<LsqEntry>,
    front_q: VecDeque<FrontEntry>,
    fetch_pc: u32,
    fetch_stall_until: u64,
    /// Fetch hit a fault (left the image or an undecodable word) and
    /// parked until a recovery redirects it; the fault itself travels
    /// through the pipeline as a trap micro-op.
    fetch_faulted: bool,
    rename_stall_until: u64,
    div_busy_until: Vec<u64>,
    cycle: u64,
    last_commit_cycle: u64,
    sys: SysState,
    stats: SimStats,
    halted: Option<i32>,
    /// A raised trap (architectural, sanitizer, or watchdog); ends the
    /// simulation.
    fatal: Option<Trap>,
    watchdog_report: Option<WatchdogReport>,
    shadow: Option<Shadow>,
    shadow_done: bool,
    pending_faults: Vec<(u64, FaultKind)>,
    faults_applied: u32,
    force_flip_branch: bool,
    /// Debug: (load pc, store pc) of each memory-order violation.
    pub violation_log: Vec<(u32, u32)>,
}

impl Core {
    /// Builds a core for a linked image, validating that the machine
    /// can actually execute it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when the image's ISA does not match the
    /// machine's front-end or the register file is too small for the
    /// architectural state.
    pub fn new(image: Image, cfg: MachineConfig) -> Result<Core, CoreError> {
        let compatible = matches!(
            (cfg.isa, image.isa),
            (IsaKind::Straight, ImageIsa::Straight) | (IsaKind::Ss, ImageIsa::Riscv)
        );
        if !compatible {
            return Err(CoreError::IsaMismatch { machine: cfg.isa, image: image.isa });
        }
        if cfg.phys_regs < 33 {
            return Err(CoreError::TooFewPhysRegs { phys_regs: cfg.phys_regs });
        }
        let mut mem = vec![0u8; MEM_SIZE as usize];
        image.load_into(&mut mem);
        let phys = cfg.phys_regs as usize;
        let mut prf = vec![0u32; phys];
        let mut rmt_state = RmtState::new(cfg.phys_regs);
        // Architectural init: SP (x2 for RV32; the SP register for
        // STRAIGHT lives in the rename stage).
        prf[rmt_state.rmt[2] as usize] = STACK_TOP;
        rmt_state.freelist.make_contiguous();
        let fetch_pc = image.entry;
        let shadow = if cfg.sanitizer {
            Some(match cfg.isa {
                IsaKind::Straight => Shadow::S(Box::new(StraightEmu::new(image.clone()))),
                IsaKind::Ss => Shadow::R(Box::new(RiscvEmu::new(image.clone()))),
            })
        } else {
            None
        };
        Ok(Core {
            bp: build(cfg.predictor),
            hier: Hierarchy::new(cfg.hierarchy),
            div_busy_until: vec![0; cfg.units.div as usize],
            cfg,
            image,
            mem,
            ras: Ras::new(),
            memdep: StoreSets::new(),
            prf,
            prf_ready: vec![true; phys],
            rp_state: RpState { rp: 0, sp: STACK_TOP },
            arch_rp: RpState { rp: 0, sp: STACK_TOP },
            rmt_state,
            rob: VecDeque::new(),
            next_seq: 0,
            iq: Vec::new(),
            inflight: Vec::new(),
            lsq: Vec::new(),
            front_q: VecDeque::new(),
            fetch_pc,
            fetch_stall_until: 0,
            fetch_faulted: false,
            rename_stall_until: 0,
            cycle: 0,
            last_commit_cycle: 0,
            sys: SysState::default(),
            stats: SimStats::default(),
            halted: None,
            fatal: None,
            watchdog_report: None,
            shadow,
            shadow_done: false,
            pending_faults: Vec::new(),
            faults_applied: 0,
            force_flip_branch: false,
            violation_log: Vec::new(),
        })
    }

    // -- helpers ----------------------------------------------------

    /// ROB entries always hold contiguous sequence numbers (dispatch
    /// appends, commit pops the front, recovery truncates the tail),
    /// but squashed sequence numbers are never reused, so indexing is
    /// relative to the current front entry.
    fn rob_index(&self, seq: u64) -> Option<usize> {
        let front = self.rob.front()?.seq;
        if seq < front {
            return None;
        }
        let idx = (seq - front) as usize;
        if idx < self.rob.len() {
            Some(idx)
        } else {
            None
        }
    }

    fn src_value(&self, src: Option<u16>) -> u32 {
        match src {
            Some(p) => self.prf[p as usize],
            None => 0,
        }
    }

    fn srcs_ready(&self, uop: &UOp) -> bool {
        uop.srcs.iter().flatten().all(|&p| self.prf_ready[p as usize])
    }

    fn mem_read(&self, width: MemWidth, addr: u32) -> u32 {
        let a = addr as usize;
        if a + width.bytes() as usize > self.mem.len() {
            return 0; // wrong-path wild access
        }
        match width {
            MemWidth::B => self.mem[a] as i8 as i32 as u32,
            MemWidth::Bu => u32::from(self.mem[a]),
            MemWidth::H => i32::from(i16::from_le_bytes([self.mem[a], self.mem[a + 1]])) as u32,
            MemWidth::Hu => u32::from(u16::from_le_bytes([self.mem[a], self.mem[a + 1]])),
            MemWidth::W => {
                u32::from_le_bytes([self.mem[a], self.mem[a + 1], self.mem[a + 2], self.mem[a + 3]])
            }
        }
    }

    fn mem_write(&mut self, width: MemWidth, addr: u32, val: u32) {
        let a = addr as usize;
        if a + width.bytes() as usize > self.mem.len() {
            return;
        }
        match width {
            MemWidth::B | MemWidth::Bu => self.mem[a] = val as u8,
            MemWidth::H | MemWidth::Hu => self.mem[a..a + 2].copy_from_slice(&(val as u16).to_le_bytes()),
            MemWidth::W => self.mem[a..a + 4].copy_from_slice(&val.to_le_bytes()),
        }
    }

    fn overlap(a_addr: u32, a_w: MemWidth, b_addr: u32, b_w: MemWidth) -> bool {
        let a_end = a_addr.wrapping_add(a_w.bytes());
        let b_end = b_addr.wrapping_add(b_w.bytes());
        a_addr < b_end && b_addr < a_end
    }

    /// Raises a fatal trap with the current architectural context.
    /// The index is the retired-instruction count, which matches the
    /// functional emulators' dynamic instruction index at the same
    /// point, so differential tests can compare full [`Trap`]s.
    fn raise(&mut self, kind: TrapKind, pc: u32) {
        if self.fatal.is_none() {
            self.fatal =
                Some(Trap { kind, pc, index: self.stats.retired, cycle: Some(self.cycle) });
        }
    }

    // -- commit ------------------------------------------------------

    fn commit(&mut self) {
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else { return };
            match head.state {
                RState::Done => {
                    // Execution-time faults (wild/misaligned accesses)
                    // become precise here: the instruction reached the
                    // head un-squashed, so it really happens.
                    if let Some(kind) = head.trap {
                        let pc = head.uop.pc;
                        self.raise(kind, pc);
                        return;
                    }
                    let Some(entry) = self.rob.pop_front() else { return };
                    self.retire(entry);
                    if self.halted.is_some() || self.fatal.is_some() {
                        return;
                    }
                }
                RState::Waiting if head.uop.is_trap() => {
                    // Fetch/decode/distance faults dispatched as trap
                    // micro-ops fire once they reach the head.
                    if let FuncOp::Trap(kind) = head.uop.func {
                        let pc = head.uop.pc;
                        self.raise(kind, pc);
                    }
                    return;
                }
                RState::Waiting if head.uop.is_sys() || head.uop.is_halt() => {
                    // Environment calls and HALT execute
                    // non-speculatively at the ROB head.
                    if head.uop.is_halt() {
                        if let Some(e) = self.rob.front_mut() {
                            e.state = RState::Done;
                        }
                    } else if self.srcs_ready(&head.uop) {
                        let uop = head.uop.clone();
                        let arg = self.src_value(uop.srcs[0]);
                        let code = match uop.func {
                            FuncOp::Sys { code: Some(c) } => c,
                            _ => self.src_value(uop.srcs[1]) as u16,
                        };
                        let result = match self.sys.apply(code, arg) {
                            Some(r) => r,
                            None => {
                                self.raise(TrapKind::UnknownSys { code }, uop.pc);
                                return;
                            }
                        };
                        if let Some(d) = uop.dst {
                            self.prf[d as usize] = result;
                            self.prf_ready[d as usize] = true;
                            self.stats.events.prf_writes += 1;
                        }
                        if let Some(e) = self.rob.front_mut() {
                            e.state = RState::Done;
                        }
                    }
                    return; // retires next cycle
                }
                _ => return,
            }
        }
    }

    /// Cross-validates one committing instruction against the shadow
    /// oracle emulator (and, for STRAIGHT, the architectural RP).
    /// Returns the sanitizer trap to raise if the machine diverged.
    fn sanitize_retire(&mut self, entry: &RobEntry) -> Option<TrapKind> {
        let uop = &entry.uop;
        // RP-vs-ROB consistency: the committed destination must be
        // exactly the architectural RP (the RP after the previously
        // retired instruction). Catches any desync between the rename
        // adders and the ROB's recovery bookkeeping.
        if self.cfg.isa == IsaKind::Straight {
            let expected = self.arch_rp.rp as u16;
            if let Some(got) = uop.dst {
                if got != expected {
                    return Some(TrapKind::RpDesync { expected, got });
                }
            }
        }
        if self.shadow_done {
            return None;
        }
        let committed = uop.dst.map(|d| self.prf[d as usize]);
        match &mut self.shadow {
            Some(Shadow::S(emu)) => {
                if emu.pc() != uop.pc {
                    return Some(TrapKind::OraclePcMismatch { expected: emu.pc() });
                }
                match emu.step() {
                    // The oracle observed an architectural trap the
                    // core sailed past.
                    Some(EmuExit::Trap(t)) => return Some(t.kind),
                    Some(_) => self.shadow_done = true,
                    None => {}
                }
                if !uop.is_halt() {
                    if let Some(got) = committed {
                        let expected = emu.last_result();
                        if got != expected {
                            return Some(TrapKind::OracleValueMismatch { expected, got });
                        }
                    }
                }
                if uop.is_sys() && emu.stdout() != self.sys.stdout {
                    return Some(TrapKind::OracleOutputDivergence {
                        core_len: self.sys.stdout.len() as u32,
                        oracle_len: emu.stdout().len() as u32,
                    });
                }
            }
            Some(Shadow::R(emu)) => {
                if emu.pc() != uop.pc {
                    return Some(TrapKind::OraclePcMismatch { expected: emu.pc() });
                }
                match emu.step() {
                    Some(EmuExit::Trap(t)) => return Some(t.kind),
                    Some(_) => self.shadow_done = true,
                    None => {}
                }
                if let (Some(got), Some(l)) = (committed, uop.logical_dst) {
                    let expected = emu.reg(Reg::new(l));
                    if got != expected {
                        return Some(TrapKind::OracleValueMismatch { expected, got });
                    }
                }
                if uop.is_sys() && emu.stdout() != self.sys.stdout {
                    return Some(TrapKind::OracleOutputDivergence {
                        core_len: self.sys.stdout.len() as u32,
                        oracle_len: emu.stdout().len() as u32,
                    });
                }
            }
            None => {}
        }
        None
    }

    fn retire(&mut self, entry: RobEntry) {
        if self.shadow.is_some() {
            if let Some(kind) = self.sanitize_retire(&entry) {
                self.raise(kind, entry.uop.pc);
                return;
            }
        }
        let uop = &entry.uop;
        self.stats.bump_kind(uop.kind);
        self.stats.events.rob_commits += 1;
        // Predictor training happens in order at retire.
        if uop.is_cond_branch() {
            self.bp.update(uop.pc, entry.actual_taken, entry.pred_taken);
        }
        if uop.is_store() {
            if let Some(i) = self.lsq.iter().position(|e| e.seq == entry.seq) {
                let e = self.lsq.remove(i);
                if let (Some(addr), Some(data)) = (e.addr, e.data) {
                    self.mem_write(e.width, addr, data);
                }
            }
        } else if uop.is_load() {
            if let Some(i) = self.lsq.iter().position(|e| e.seq == entry.seq) {
                let e = self.lsq.remove(i);
                if e.speculative && self.stats.retired.is_multiple_of(64) {
                    // Sparse decay: successful speculation slowly
                    // releases a trained dependence.
                    self.memdep.on_no_violation(e.pc);
                }
            }
        }
        // SS: the previous mapping's physical register is now free.
        if let Some(prev) = uop.prev_phys {
            self.rmt_state.freelist.push_back(prev);
            self.stats.events.freelist_ops += 1;
        }
        // Architectural STRAIGHT state shadows (used when a recovery
        // squashes the whole window).
        if self.cfg.isa == IsaKind::Straight {
            self.arch_rp = RpState { rp: uop.rp_after, sp: uop.sp_after };
        }
        if uop.is_halt() {
            self.halted = Some(self.sys.exit_code.unwrap_or(0));
        } else if self.sys.exit_code.is_some() {
            self.halted = self.sys.exit_code;
        }
    }

    // -- completion / writeback --------------------------------------

    fn complete(&mut self) {
        let mut due: Vec<Inflight> = Vec::new();
        self.inflight.retain(|f| {
            if f.done_at <= self.cycle {
                due.push(*f);
                false
            } else {
                true
            }
        });
        due.sort_by_key(|f| f.seq);
        for f in due {
            // Entry may have been squashed by an earlier recovery this
            // cycle.
            let Some(idx) = self.rob_index(f.seq) else { continue };
            if self.rob[idx].state != RState::Issued {
                continue;
            }
            let uop = self.rob[idx].uop.clone();
            let s0 = self.src_value(uop.srcs[0]);
            let s1 = self.src_value(uop.srcs[1]);
            let mut actual_next = uop.pc.wrapping_add(4);
            let mut actual_taken = false;
            let mut trap: Option<TrapKind> = None;
            let result: u32 = match uop.func {
                FuncOp::Alu(op) => op.eval(s0, s1),
                FuncOp::AluImmRv(op, imm) => op.eval(s0, imm),
                FuncOp::AluImmS(op, imm) => op.eval_straight(s0, imm),
                FuncOp::Const(v) => v,
                FuncOp::Copy => s0,
                FuncOp::Load { width, .. } => {
                    let addr = self
                        .lsq
                        .iter()
                        .find(|e| e.seq == f.seq)
                        .and_then(|e| e.addr)
                        .unwrap_or(0);
                    match check_load(width, addr, self.mem.len()) {
                        Some(kind) => {
                            trap = Some(kind);
                            0
                        }
                        None => match f.load_src {
                            Some(LoadSrc::Fwd(v)) => v,
                            _ => self.mem_read(width, addr),
                        },
                    }
                }
                FuncOp::Store { .. } => s1, // STRAIGHT: ST result is the stored value
                FuncOp::Branch { cond, target } => {
                    actual_taken = cond.eval(s0, s1);
                    actual_next = if actual_taken { target } else { uop.pc.wrapping_add(4) };
                    0
                }
                FuncOp::Jump { target, link } => {
                    actual_next = target;
                    if link {
                        uop.pc.wrapping_add(4)
                    } else {
                        0
                    }
                }
                FuncOp::JumpInd { offset, link } => {
                    let target = s0.wrapping_add(offset as u32) & !1;
                    actual_next = target;
                    if link {
                        uop.pc.wrapping_add(4)
                    } else {
                        target
                    }
                }
                FuncOp::Sys { .. } | FuncOp::Halt | FuncOp::Trap(_) => {
                    unreachable!("executed at commit")
                }
                FuncOp::Nop => 0,
            };
            if let Some(d) = uop.dst {
                self.prf[d as usize] = result;
                self.prf_ready[d as usize] = true;
                self.stats.events.prf_writes += 1;
                self.stats.events.iq_wakeups += 1;
            }
            self.rob[idx].state = RState::Done;
            self.rob[idx].actual_taken = actual_taken;
            if trap.is_some() {
                self.rob[idx].trap = trap;
            }
            if uop.is_control() {
                if uop.is_cond_branch() {
                    self.stats.branches += 1;
                }
                if actual_next != self.rob[idx].predicted_next {
                    if uop.is_cond_branch() {
                        self.stats.branch_mispredicts += 1;
                    } else {
                        self.stats.indirect_mispredicts += 1;
                    }
                    let cp = self.rob[idx].ras_cp;
                    self.recover(f.seq, actual_next, Some(cp));
                }
            }
        }
    }

    // -- issue ------------------------------------------------------

    fn issue(&mut self) {
        let mut budget_total = self.cfg.issue_width;
        let mut budget = [
            self.cfg.units.alu,
            self.cfg.units.mul,
            self.cfg.units.div,
            self.cfg.units.bc,
            self.cfg.units.mem,
        ];
        let unit_idx = |u: ExecUnit| match u {
            ExecUnit::Alu => 0usize,
            ExecUnit::Mul => 1,
            ExecUnit::Div => 2,
            ExecUnit::Branch => 3,
            ExecUnit::Mem => 4,
        };
        self.iq.sort_unstable();
        let candidates: Vec<u64> = self.iq.clone();
        for seq in candidates {
            if budget_total == 0 {
                break;
            }
            let Some(idx) = self.rob_index(seq) else {
                self.iq.retain(|&s| s != seq);
                continue;
            };
            if self.rob[idx].state != RState::Waiting {
                self.iq.retain(|&s| s != seq);
                continue;
            }
            let uop = self.rob[idx].uop.clone();
            let ui = unit_idx(uop.unit);
            if budget[ui] == 0 {
                continue;
            }
            // Unpipelined divider occupancy.
            let mut div_slot = None;
            if uop.unit == ExecUnit::Div {
                match self.div_busy_until.iter().position(|&b| b <= self.cycle) {
                    Some(k) => div_slot = Some(k),
                    None => continue,
                }
            }
            let mut load_src = None;
            let latency;
            if uop.is_load() {
                if !self.srcs_ready(&uop) {
                    continue;
                }
                match self.try_issue_load(seq, &uop) {
                    Some((lat, src)) => {
                        latency = lat;
                        load_src = Some(src);
                    }
                    None => continue, // retry next cycle
                }
            } else if uop.is_store() {
                // Stores issue their address as soon as the base
                // register is ready (split AGU), shrinking the window
                // in which younger loads see unknown store addresses.
                let addr_known = self.lsq.iter().any(|e| e.seq == seq && e.addr.is_some());
                if !addr_known {
                    if uop.srcs[0].is_some_and(|p| !self.prf_ready[p as usize]) {
                        continue;
                    }
                    let violation = self.issue_store_addr(seq, &uop);
                    if violation {
                        return; // the recovery consumed this cycle
                    }
                    // The address generation consumes this issue slot.
                    budget[ui] -= 1;
                    budget_total -= 1;
                    self.stats.events.fu_ops += 1;
                    if uop.srcs[1].is_some_and(|p| !self.prf_ready[p as usize]) {
                        continue; // data not ready yet; stay in the IQ
                    }
                    self.record_store_data(seq, &uop);
                    let Some(idx) = self.rob_index(seq) else { continue };
                    self.rob[idx].state = RState::Issued;
                    self.inflight.push(Inflight { seq, done_at: self.cycle + 1, load_src: None });
                    self.iq.retain(|&s| s != seq);
                    continue;
                }
                // Address already generated; waiting for data.
                if uop.srcs[1].is_some_and(|p| !self.prf_ready[p as usize]) {
                    continue;
                }
                self.record_store_data(seq, &uop);
                latency = 1;
            } else {
                if !self.srcs_ready(&uop) {
                    continue;
                }
                latency = uop.latency;
            }
            if let Some(k) = div_slot {
                self.div_busy_until[k] = self.cycle + u64::from(latency);
            }
            budget[ui] -= 1;
            budget_total -= 1;
            self.stats.events.fu_ops += 1;
            self.stats.events.prf_reads += uop.srcs.iter().flatten().count() as u64;
            let Some(idx) = self.rob_index(seq) else { continue };
            self.rob[idx].state = RState::Issued;
            self.inflight.push(Inflight { seq, done_at: self.cycle + u64::from(latency), load_src });
            self.iq.retain(|&s| s != seq);
        }
    }

    /// Attempts to issue a load: address generation, LSQ search,
    /// forwarding, and memory-dependence speculation. Returns the
    /// latency and value source, or `None` to retry later.
    fn try_issue_load(&mut self, seq: u64, uop: &UOp) -> Option<(u32, LoadSrc)> {
        let FuncOp::Load { width, offset } = uop.func else { unreachable!() };
        let addr = self.src_value(uop.srcs[0]).wrapping_add(offset as u32);
        self.stats.events.lsq_searches += 1;
        let mut unknown_older = false;
        let mut best: Option<(u64, u32, MemWidth, u32)> = None; // (seq, addr, width, data)
        for e in &self.lsq {
            if !e.is_store || e.seq >= seq {
                continue;
            }
            match e.addr {
                None => unknown_older = true,
                Some(sa) => {
                    if Self::overlap(sa, e.width, addr, width) {
                        if sa == addr && e.width == width {
                            let Some(data) = e.data else {
                                return None; // forwardable, data pending
                            };
                            if best.is_none_or(|(bs, ..)| e.seq > bs) {
                                best = Some((e.seq, sa, e.width, data));
                            }
                        } else {
                            // Partial overlap: wait for the store to
                            // drain at commit.
                            return None;
                        }
                    }
                }
            }
        }
        if unknown_older && self.memdep.predict_dependent(uop.pc) {
            // Predicted dependent: even with a forwardable match, an
            // unknown-address store in between could be the real
            // producer — wait for all older store addresses.
            return None;
        }
        // Record the load address for later violation checks.
        if let Some(e) = self.lsq.iter_mut().find(|e| e.seq == seq) {
            e.addr = Some(addr);
            e.speculative = unknown_older;
            e.fwd_src = best.map(|(bs, ..)| bs);
        }
        match best {
            Some((.., data)) => Some((2, LoadSrc::Fwd(data))),
            None => {
                let lat = 1 + self.hier.data_access(addr);
                Some((lat, LoadSrc::Mem))
            }
        }
    }

    /// Generates a store's address, detecting memory-order violations
    /// by younger speculatively-executed loads. Returns true when a
    /// violation recovery was triggered.
    fn issue_store_addr(&mut self, seq: u64, uop: &UOp) -> bool {
        let FuncOp::Store { width, offset } = uop.func else { unreachable!() };
        let addr = self.src_value(uop.srcs[0]).wrapping_add(offset as u32);
        if let Some(e) = self.lsq.iter_mut().find(|e| e.seq == seq) {
            e.addr = Some(addr);
        }
        // A wild or misaligned store address is recorded on the ROB
        // entry and raised precisely if the store reaches the head.
        if let Some(kind) = check_store(width, addr, self.mem.len()) {
            if let Some(i) = self.rob_index(seq) {
                self.rob[i].trap = Some(kind);
            }
        }
        self.stats.events.lsq_searches += 1;
        // A younger load that already executed reading this address
        // got stale data.
        let victim = self
            .lsq
            .iter()
            .filter(|e| {
                !e.is_store
                    && e.seq > seq
                    && e.addr.is_some_and(|la| Self::overlap(addr, width, la, e.width))
                    // A load that forwarded from a store *younger* than
                    // this one already read the correct, newer value.
                    && e.fwd_src.is_none_or(|fs| fs < seq)
            })
            .map(|e| (e.seq, e.pc))
            .min();
        if let Some((load_seq, load_pc)) = victim {
            // Only an actual executed load matters; it re-executes.
            self.violation_log.push((load_pc, uop.pc));
            self.stats.memory_violations += 1;
            self.memdep.on_violation(load_pc);
            self.recover(load_seq - 1, load_pc, None);
            return true;
        }
        false
    }

    /// Records a store's data once its value operand is ready.
    fn record_store_data(&mut self, seq: u64, uop: &UOp) {
        let data = self.src_value(uop.srcs[1]);
        if let Some(e) = self.lsq.iter_mut().find(|e| e.seq == seq) {
            e.data = Some(data);
        }
    }

    // -- recovery ----------------------------------------------------

    /// Squashes everything younger than `boundary_seq` and refetches
    /// from `new_pc`. This is the mechanism whose cost separates the
    /// two machines.
    fn recover(&mut self, boundary_seq: u64, new_pc: u32, ras_cp: Option<RasCheckpoint>) {
        let front_seq = self.rob.front().map(|e| e.seq).unwrap_or(boundary_seq + 1);
        let keep = (boundary_seq + 1).saturating_sub(front_seq) as usize;
        let squashed: Vec<RobEntry> = self.rob.drain(keep.min(self.rob.len())..).collect();
        let n = squashed.len() as u64;
        self.stats.squashed += n;
        match self.cfg.isa {
            IsaKind::Ss => {
                // Walk the squashed entries from the tail, restoring
                // previous mappings and refreeing destinations.
                for e in squashed.iter().rev() {
                    self.stats.events.rob_walk_reads += 1;
                    if let (Some(l), Some(prev), Some(d)) =
                        (e.uop.logical_dst, e.uop.prev_phys, e.uop.dst)
                    {
                        self.rmt_state.rmt[l as usize] = prev;
                        self.rmt_state.freelist.push_back(d);
                        self.stats.events.freelist_ops += 1;
                    }
                }
                let walk_cycles = if self.cfg.ideal_recovery {
                    0
                } else {
                    n.div_ceil(u64::from(self.cfg.walk_width()))
                };
                self.rename_stall_until = self.rename_stall_until.max(self.cycle + walk_cycles);
                self.stats.recovery_stall_cycles += walk_cycles;
            }
            IsaKind::Straight => {
                // One ROB-entry read restores RP and SP (Figure 4).
                let restore = match self.rob.back() {
                    Some(e) => RpState { rp: e.uop.rp_after, sp: e.uop.sp_after },
                    None => self.arch_rp,
                };
                self.rp_state = restore;
                for e in &squashed {
                    if let Some(d) = e.uop.dst {
                        self.prf_ready[d as usize] = true;
                    }
                }
                let stall = u64::from(!self.cfg.ideal_recovery);
                self.rename_stall_until = self.rename_stall_until.max(self.cycle + stall);
                self.stats.recovery_stall_cycles += stall;
            }
        }
        // The ROB tail pointer moves back: squashed sequence numbers
        // are reused, keeping ROB sequence numbers contiguous.
        self.next_seq = boundary_seq + 1;
        self.iq.retain(|&s| s <= boundary_seq);
        self.inflight.retain(|f| f.seq <= boundary_seq);
        self.lsq.retain(|e| e.seq <= boundary_seq);
        self.front_q.clear();
        self.bp.recover();
        if let Some(cp) = ras_cp {
            self.ras.restore(cp);
        }
        self.fetch_pc = new_pc;
        self.fetch_faulted = false;
        self.fetch_stall_until = self.fetch_stall_until.max(self.cycle + 1);
    }

    // -- rename / dispatch -------------------------------------------

    fn rename_dispatch(&mut self) {
        if self.halted.is_some() {
            return;
        }
        if self.cycle < self.rename_stall_until {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            let Some(front) = self.front_q.front().cloned() else { return };
            if front.ready_at > self.cycle {
                return;
            }
            if self.rob.len() >= self.cfg.rob_capacity as usize || self.iq.len() >= self.cfg.iq_entries as usize
            {
                self.stats.backpressure_stall_cycles += 1;
                return;
            }
            // LSQ capacity.
            let (is_load, is_store) = match front.raw {
                RawInst::S(i) => (matches!(i, straight_isa::Inst::Ld { .. }), matches!(i, straight_isa::Inst::St { .. })),
                RawInst::R(i) => {
                    (matches!(i, straight_riscv::RvInst::Load { .. }), matches!(i, straight_riscv::RvInst::Store { .. }))
                }
                RawInst::Fault(_) => (false, false),
            };
            if is_load && self.lsq.iter().filter(|e| !e.is_store).count() >= self.cfg.lsq_ld as usize {
                self.stats.backpressure_stall_cycles += 1;
                return;
            }
            if is_store && self.lsq.iter().filter(|e| e.is_store).count() >= self.cfg.lsq_st as usize {
                self.stats.backpressure_stall_cycles += 1;
                return;
            }
            // Rename.
            let uop = match (self.cfg.isa, front.raw) {
                (_, RawInst::Fault(kind)) => {
                    UOp::trap(front.pc, kind, self.rp_state.rp, self.rp_state.sp)
                }
                (IsaKind::Straight, RawInst::S(inst)) => {
                    // Hazard check at the RP adders: a distance
                    // reaching past the start of execution references
                    // a producer that never existed (`next_seq` is the
                    // dynamic index this instruction will get). Trap
                    // precisely instead of reading ring garbage.
                    let oob = inst
                        .sources()
                        .into_iter()
                        .flatten()
                        .find(|d| u64::from(d.get()) > self.next_seq);
                    match oob {
                        Some(d) => UOp::trap(
                            front.pc,
                            TrapKind::DistanceOutOfRange { dist: d.get(), executed: self.next_seq },
                            self.rp_state.rp,
                            self.rp_state.sp,
                        ),
                        None => {
                            self.stats.events.rp_adds +=
                                1 + inst.sources().iter().flatten().count() as u64;
                            rename_straight(inst, front.pc, &mut self.rp_state, self.cfg.phys_regs)
                        }
                    }
                }
                (IsaKind::Ss, RawInst::R(inst)) => {
                    let nsrc = inst.sources().iter().flatten().count() as u64;
                    match rename_riscv(inst, front.pc, &mut self.rmt_state) {
                        Some(u) => {
                            self.stats.events.rmt_reads += nsrc + u64::from(u.dst.is_some());
                            self.stats.events.rmt_writes += u64::from(u.dst.is_some());
                            self.stats.events.freelist_ops += u64::from(u.dst.is_some());
                            u
                        }
                        None => {
                            self.stats.freelist_stall_cycles += 1;
                            return;
                        }
                    }
                }
                // Core::new validates the image's ISA tag against the
                // machine and fetch decodes with the machine's own
                // decoder, so a cross-ISA instruction cannot appear.
                (IsaKind::Straight, RawInst::R(_)) | (IsaKind::Ss, RawInst::S(_)) => {
                    unreachable!("Core::new validates the image ISA")
                }
            };
            self.front_q.pop_front();
            self.stats.events.decoded += 1;
            if let Some(d) = uop.dst {
                self.prf_ready[d as usize] = false;
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            let goes_to_iq = !(uop.is_sys() || uop.is_halt() || uop.is_trap());
            if uop.is_load() || uop.is_store() {
                self.lsq.push(LsqEntry {
                    seq,
                    is_store: uop.is_store(),
                    pc: uop.pc,
                    width: match uop.func {
                        FuncOp::Load { width, .. } | FuncOp::Store { width, .. } => width,
                        _ => MemWidth::W,
                    },
                    addr: None,
                    data: None,
                    speculative: false,
                    fwd_src: None,
                });
            }
            self.rob.push_back(RobEntry {
                seq,
                uop,
                state: RState::Waiting,
                predicted_next: front.predicted_next,
                pred_taken: front.pred_taken,
                actual_taken: false,
                ras_cp: front.ras_cp,
                trap: None,
            });
            self.stats.events.rob_writes += 1;
            if goes_to_iq {
                self.iq.push(seq);
                self.stats.events.iq_inserts += 1;
            }
        }
    }

    // -- fetch --------------------------------------------------------

    fn fetch(&mut self) {
        if self.halted.is_some() || self.fetch_faulted || self.cycle < self.fetch_stall_until {
            return;
        }
        let capacity = (self.cfg.fetch_width * (self.cfg.frontend_latency + 2)) as usize;
        if self.front_q.len() >= capacity {
            return;
        }
        let mut pc = self.fetch_pc;
        // Instruction-cache access for the group's first line; a miss
        // stalls fetch (the hit latency is folded into the front-end
        // depth).
        let extra = self.hier.fetch_access(pc);
        if extra > 0 {
            self.fetch_stall_until = self.cycle + u64::from(extra);
            return;
        }
        let delay = if self.cfg.ideal_recovery { 1 } else { u64::from(self.cfg.frontend_latency) };
        for _ in 0..self.cfg.fetch_width {
            if self.front_q.len() >= capacity {
                break;
            }
            // A fetch that leaves the code segment or an undecodable
            // word enters the pipe as a fault entry; fetch then parks
            // until a recovery redirects it (on the correct path the
            // fault commits and ends the simulation).
            let raw = match self.image.fetch(pc) {
                None => RawInst::Fault(TrapKind::FetchFault),
                Some(word) => match self.cfg.isa {
                    IsaKind::Straight => match straight_isa::decode(word) {
                        Ok(i) => RawInst::S(i),
                        Err(_) => RawInst::Fault(TrapKind::IllegalInstruction { word }),
                    },
                    IsaKind::Ss => match straight_riscv::decode(word) {
                        Ok(i) => RawInst::R(i),
                        Err(_) => RawInst::Fault(TrapKind::IllegalInstruction { word }),
                    },
                },
            };
            let faulted = matches!(raw, RawInst::Fault(_));
            let ras_cp = self.ras.checkpoint();
            let (predicted_next, pred_taken) = match raw.control_info(pc) {
                ControlInfo::None => (pc.wrapping_add(4), false),
                ControlInfo::CondBranch { target } => {
                    let mut taken = self.bp.predict(pc);
                    if self.force_flip_branch {
                        // Injected fault: invert this prediction.
                        taken = !taken;
                        self.force_flip_branch = false;
                    }
                    (if taken { target } else { pc.wrapping_add(4) }, taken)
                }
                ControlInfo::DirectJump { target, is_call } => {
                    if is_call {
                        self.ras.push(pc.wrapping_add(4));
                    }
                    (target, true)
                }
                ControlInfo::IndirectJump { is_call, is_return } => {
                    let t = if is_return { self.ras.pop() } else { pc.wrapping_add(4) };
                    if is_call {
                        self.ras.push(pc.wrapping_add(4));
                    }
                    (t, true)
                }
            };
            self.front_q.push_back(FrontEntry {
                ready_at: self.cycle + delay,
                pc,
                raw,
                predicted_next,
                pred_taken,
                ras_cp,
            });
            self.stats.events.fetched += 1;
            if faulted {
                self.fetch_faulted = true;
                break;
            }
            let sequential = predicted_next == pc.wrapping_add(4);
            pc = predicted_next;
            if !sequential {
                break; // redirect: next group starts at the target
            }
        }
        if !self.fetch_faulted {
            self.fetch_pc = pc;
        }
    }

    // -- fault injection ----------------------------------------------

    /// Schedules a deterministic fault to be injected at the start of
    /// `at_cycle` (see [`FaultKind`] for the menu).
    pub fn schedule_fault(&mut self, at_cycle: u64, kind: FaultKind) {
        self.pending_faults.push((at_cycle, kind));
    }

    /// Number of scheduled faults that have been applied so far.
    #[must_use]
    pub fn faults_applied(&self) -> u32 {
        self.faults_applied
    }

    fn apply_due_faults(&mut self) {
        if self.pending_faults.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.pending_faults.len() {
            if self.pending_faults[i].0 <= self.cycle {
                let (_, kind) = self.pending_faults.remove(i);
                self.apply_fault(kind);
            } else {
                i += 1;
            }
        }
    }

    fn apply_fault(&mut self, kind: FaultKind) {
        self.faults_applied += 1;
        match kind {
            FaultKind::PrfBitFlip { reg, bit } => {
                let r = reg as usize % self.prf.len();
                self.prf[r] ^= 1u32 << (bit % 32);
            }
            FaultKind::ForceMispredict => self.force_flip_branch = true,
            FaultKind::RasCorrupt { slots } => {
                for i in 0..slots {
                    self.ras.push(0xdead_0000u32.wrapping_add(i * 4));
                }
            }
            FaultKind::LoseCompletion => self.inflight.clear(),
        }
    }

    // -- watchdog -----------------------------------------------------

    fn watchdog_fire(&mut self) {
        let stalled = self.cycle - self.last_commit_cycle;
        let head = self.rob.front();
        let report = WatchdogReport {
            stalled_cycles: stalled,
            cycle: self.cycle,
            retired: self.stats.retired,
            rob_head: head.map(|e| {
                let state = match e.state {
                    RState::Waiting => "waiting",
                    RState::Issued => "issued",
                    RState::Done => "done",
                };
                (e.seq, e.uop.pc, state)
            }),
            rob_len: self.rob.len(),
            iq_len: self.iq.len(),
            inflight_len: self.inflight.len(),
            lsq_len: self.lsq.len(),
            front_len: self.front_q.len(),
            fetch_pc: self.fetch_pc,
            fetch_stall_until: self.fetch_stall_until,
            rename_stall_until: self.rename_stall_until,
        };
        let pc = head.map_or(self.fetch_pc, |e| e.uop.pc);
        self.watchdog_report = Some(report);
        self.raise(TrapKind::Watchdog { stalled_cycles: stalled }, pc);
    }

    // -- driver -------------------------------------------------------

    /// One-line state summary for debugging stalls.
    #[must_use]
    pub fn debug_snapshot(&self) -> String {
        let head = self.rob.front().map(|e| {
            format!(
                "head seq={} pc={:#x} {:?} state={:?} srcs_ready={}",
                e.seq,
                e.uop.pc,
                e.uop.func,
                e.state,
                self.srcs_ready(&e.uop)
            )
        });
        format!(
            "cyc={} rob={} iq={} infl={} lsq={} frontq={} front_rdy={:?} front_pc={:?} fetch_pc={:#x} fstall@{} rstall@{} retired={} | {:?}",
            self.cycle,
            self.rob.len(),
            self.iq.len(),
            self.inflight.len(),
            self.lsq.len(),
            self.front_q.len(),
            self.front_q.front().map(|f| f.ready_at),
            self.front_q.front().map(|f| format!("{:#x}", f.pc)),
            self.fetch_pc,
            self.fetch_stall_until,
            self.rename_stall_until,
            self.stats.retired,
            head
        )
    }

    /// Advances one cycle.
    pub fn step(&mut self) {
        self.apply_due_faults();
        let retired_before = self.stats.retired;
        self.commit();
        if self.halted.is_some() || self.fatal.is_some() {
            return;
        }
        self.complete();
        self.issue();
        self.rename_dispatch();
        self.fetch();
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        if self.stats.retired != retired_before {
            self.last_commit_cycle = self.cycle;
        } else if self.cycle - self.last_commit_cycle > self.cfg.watchdog_limit {
            self.watchdog_fire();
        }
    }

    fn exit(&self) -> SimExit {
        if let Some(code) = self.halted {
            SimExit::Completed { code }
        } else if let Some(t) = self.fatal {
            SimExit::Trap(t)
        } else {
            SimExit::CycleLimit
        }
    }

    /// Runs in place to completion (or trap, watchdog, or the cycle
    /// budget), leaving the core inspectable.
    pub fn run_in_place(&mut self, max_cycles: u64) -> SimResult {
        while self.halted.is_none() && self.fatal.is_none() && self.cycle < max_cycles {
            self.step();
        }
        self.stats.mem = self.hier.stats();
        SimResult {
            exit: self.exit(),
            exit_code: self.halted,
            watchdog: self.watchdog_report.clone(),
            stdout: self.sys.stdout.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Runs to completion (or trap, watchdog, or the cycle budget).
    #[must_use]
    pub fn run(mut self, max_cycles: u64) -> SimResult {
        while self.halted.is_none() && self.fatal.is_none() && self.cycle < max_cycles {
            self.step();
        }
        self.stats.mem = self.hier.stats();
        SimResult {
            exit: self.exit(),
            exit_code: self.halted,
            watchdog: self.watchdog_report,
            stdout: self.sys.stdout,
            stats: self.stats,
        }
    }
}

/// Simulates a linked image on the given machine.
///
/// # Errors
///
/// Returns [`CoreError`] when the machine cannot execute the image at
/// all (ISA mismatch, undersized register file).
pub fn simulate(image: Image, cfg: MachineConfig, max_cycles: u64) -> Result<SimResult, CoreError> {
    Ok(Core::new(image, cfg)?.run(max_cycles))
}
