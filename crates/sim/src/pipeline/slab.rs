//! Slab primitives for the data-oriented pipeline core: generational
//! slot handles and packed slot bitsets.
//!
//! The ROB and LSQ are structure-of-arrays ring slabs (see [`super::rob`]
//! and [`super::lsq`]); structures that need to refer to an individual
//! in-flight instruction *across* cycles (the scheduler's wakeup lists)
//! do so through a [`SlotHandle`]: a slot index plus the generation the
//! slab stamped on that slot when the entry was pushed. Slots are
//! recycled aggressively (sequence numbers rewind on recovery), so a
//! handle is only honoured when its generation still matches — a stale
//! handle to a squashed-and-reused slot is rejected instead of touching
//! the wrong instruction.

/// A generational reference to a slab slot.
///
/// `gen` is the dispatch identity (`uid`) of the entry the handle was
/// created for; uids are never reused, so `gen` equality identifies
/// "the same dynamic instruction" even though `slot` indices and
/// sequence numbers are both recycled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SlotHandle {
    /// Physical slot index in the slab.
    pub slot: u32,
    /// Generation stamped on the slot when this handle was issued.
    pub gen: u64,
}

/// A packed bitset over slab slots.
///
/// Backs the scheduler's ready set (one bit per ROB slot) and supports
/// the age-ordered select walk: set bits are enumerated in *ring*
/// order starting from the ROB head slot, which — because ROB sequence
/// numbers are contiguous and slots are `seq mod capacity` — is
/// exactly ascending age. Scanning packed words with
/// `trailing_zeros`/`w &= w - 1` replaces the old sorted-`Vec`
/// insert/remove (each an `O(n)` memmove) with `O(1)` bit flips.
#[derive(Debug, Clone)]
pub(crate) struct SlotBits {
    words: Box<[u64]>,
}

impl SlotBits {
    /// An empty bitset covering `cap` slots (rounded up to whole
    /// 64-bit words).
    pub fn new(cap: usize) -> SlotBits {
        SlotBits { words: vec![0u64; cap.div_ceil(64).max(1)].into_boxed_slice() }
    }

    #[inline]
    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    #[inline]
    pub fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// True when no bit is set.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Appends every set slot to `out` in ring order starting at
    /// `start`: `start, start+1, …, cap-1, 0, …, start-1`. With
    /// `start` = the ROB head slot this is ascending sequence-number
    /// (age) order — the select order the scheduler contract requires.
    pub fn collect_ring_order(&self, start: usize, out: &mut Vec<u32>) {
        let nwords = self.words.len();
        let sw = start / 64;
        let sb = start % 64;
        // Segment [start, cap): the first word keeps only bits >= sb.
        let mut w = self.words[sw] & (u64::MAX << sb);
        let mut wi = sw;
        loop {
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                out.push((wi * 64 + b) as u32);
                w &= w - 1;
            }
            wi += 1;
            if wi == nwords {
                break;
            }
            w = self.words[wi];
        }
        // Segment [0, start): whole words below sw, then the partial
        // word keeping only bits < sb.
        for (i, &word) in self.words.iter().enumerate().take(sw) {
            let mut w = word;
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                out.push((i * 64 + b) as u32);
                w &= w - 1;
            }
        }
        if sb != 0 {
            let mut w = self.words[sw] & !(u64::MAX << sb);
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                out.push((sw * 64 + b) as u32);
                w &= w - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_get() {
        let mut b = SlotBits::new(200);
        assert!(b.is_empty());
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(199);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(199));
        assert!(!b.get(1) && !b.get(198));
        b.clear(63);
        assert!(!b.get(63));
        assert!(!b.is_empty());
        b.clear_all();
        assert!(b.is_empty());
    }

    fn collected(bits: &SlotBits, start: usize) -> Vec<u32> {
        let mut out = Vec::new();
        bits.collect_ring_order(start, &mut out);
        out
    }

    #[test]
    fn ring_order_from_zero_is_ascending() {
        let mut b = SlotBits::new(256);
        for i in [3usize, 64, 65, 130, 255] {
            b.set(i);
        }
        assert_eq!(collected(&b, 0), vec![3, 64, 65, 130, 255]);
    }

    #[test]
    fn ring_order_wraps_at_start() {
        let mut b = SlotBits::new(128);
        for i in [2usize, 63, 70, 100] {
            b.set(i);
        }
        // Start inside the set: everything >= 70 first, then the wrap.
        assert_eq!(collected(&b, 70), vec![70, 100, 2, 63]);
        // Start on a word boundary.
        assert_eq!(collected(&b, 64), vec![70, 100, 2, 63]);
        // Start just past a set bit excludes it until the wrap.
        assert_eq!(collected(&b, 71), vec![100, 2, 63, 70]);
    }

    #[test]
    fn ring_order_exhaustive_small() {
        // Cross-check the word-scanning walk against a naive loop for
        // every start position over a fixed pattern.
        let cap = 192;
        let mut b = SlotBits::new(cap);
        for i in (0..cap).filter(|i| i % 7 == 0 || i % 31 == 3) {
            b.set(i);
        }
        for start in 0..cap {
            let naive: Vec<u32> =
                (0..cap).map(|k| ((start + k) % cap) as u32).filter(|&s| b.get(s as usize)).collect();
            assert_eq!(collected(&b, start), naive, "start={start}");
        }
    }
}
