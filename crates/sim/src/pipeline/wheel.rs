//! The completion timing wheel: in-flight (issued, not yet completed)
//! operations filed by completion cycle.
//!
//! Every modeled latency is small and bounded — the worst case is the
//! full miss path (L1 + L2 + L3 + memory, ≈260 cycles) — so a ring of
//! [`WHEEL_SLOTS`] buckets indexed by `done_at mod WHEEL_SLOTS` holds
//! every event less than one lap out, and the writeback stage drains
//! exactly one bucket per cycle in O(due) with no comparisons. This
//! replaces a `BinaryHeap` ordered by `(done_at, seq)`: the heap paid
//! `O(log n)` sift per push/pop and, worse, an `O(n)` rebuild on every
//! recovery to drop squashed entries. The wheel never removes on
//! recovery at all — squashed events stay in their buckets and are
//! rejected at drain time by the ROB's generation check (the same
//! staleness protocol the scheduler's wakeup handles use), which is
//! cheaper than eagerly filtering and keeps recovery O(squashed).

/// Where a completing load takes its value from.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LoadSrc {
    /// Read functional memory at completion.
    Mem,
    /// Forwarded from an in-flight store.
    Fwd(u32),
}

/// One in-flight operation, filed under its completion cycle.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Inflight {
    /// ROB sequence number (reused across recoveries).
    pub seq: u64,
    /// Dispatch identity of the issuing instruction. Sequence numbers
    /// rewind on recovery, so a drained event only completes the ROB
    /// entry whose generation still matches — a stale event for a
    /// squashed-and-reissued sequence number is dropped.
    pub uid: u64,
    /// Cycle the operation's result is available.
    pub done_at: u64,
    /// Load value source (`None` for non-loads).
    pub load_src: Option<LoadSrc>,
}

/// Bucket count; must exceed the largest modeled completion latency
/// (the full miss path is ≈260 cycles) and be a power of two.
const WHEEL_SLOTS: usize = 512;

/// The timing wheel itself.
#[derive(Debug)]
pub(crate) struct CompletionWheel {
    /// `buckets[done_at % WHEEL_SLOTS]`, drained once per cycle.
    buckets: Vec<Vec<Inflight>>,
    /// Events scheduled a full lap or more ahead (none of the modeled
    /// latencies reach this; kept so an oversized latency is merely
    /// slow instead of wrong).
    overflow: Vec<Inflight>,
    /// Live event count, *including* squashed events not yet drained
    /// (diagnostics only — the watchdog report and debug snapshots).
    len: usize,
}

impl CompletionWheel {
    /// An empty wheel.
    pub fn new() -> CompletionWheel {
        CompletionWheel {
            buckets: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            len: 0,
        }
    }

    /// Number of undrained events (squashed-but-undrained included).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Files an event. `now` is the current cycle; `ev.done_at` must
    /// be in the future (issue always schedules at least one cycle of
    /// latency).
    #[inline]
    pub fn push(&mut self, now: u64, ev: Inflight) {
        debug_assert!(ev.done_at > now);
        self.len += 1;
        if (ev.done_at - now) as usize >= WHEEL_SLOTS {
            self.overflow.push(ev);
        } else {
            self.buckets[(ev.done_at as usize) & (WHEEL_SLOTS - 1)].push(ev);
        }
    }

    /// Drains every event due at `now` into `out` (order unspecified —
    /// the writeback stage sorts by sequence number). Must be called
    /// for every cycle value exactly once, which the in-order `step()`
    /// loop guarantees.
    pub fn drain_due(&mut self, now: u64, out: &mut Vec<Inflight>) {
        let bucket = &mut self.buckets[(now as usize) & (WHEEL_SLOTS - 1)];
        self.len -= bucket.len();
        out.append(bucket);
        if !self.overflow.is_empty() {
            let mut i = 0;
            while i < self.overflow.len() {
                if self.overflow[i].done_at <= now {
                    out.push(self.overflow.swap_remove(i));
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Drops every event (core reset, or the `LoseCompletion` injected
    /// fault). Bucket allocations are kept.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.overflow.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, done_at: u64) -> Inflight {
        Inflight { seq, uid: seq, done_at, load_src: None }
    }

    fn drain(w: &mut CompletionWheel, now: u64) -> Vec<u64> {
        let mut out = Vec::new();
        w.drain_due(now, &mut out);
        let mut seqs: Vec<u64> = out.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs
    }

    #[test]
    fn events_fire_exactly_at_their_cycle() {
        let mut w = CompletionWheel::new();
        w.push(10, ev(1, 11));
        w.push(10, ev(2, 13));
        w.push(10, ev(3, 11));
        assert_eq!(w.len(), 3);
        assert_eq!(drain(&mut w, 11), vec![1, 3]);
        assert_eq!(drain(&mut w, 12), Vec::<u64>::new());
        assert_eq!(drain(&mut w, 13), vec![2]);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn wrap_around_keeps_laps_separate() {
        let mut w = CompletionWheel::new();
        // Two events one lap apart in wheel position but pushed at
        // times where each lands within its own horizon.
        w.push(0, ev(1, 5));
        assert_eq!(drain(&mut w, 5), vec![1]);
        let later = 5 + WHEEL_SLOTS as u64;
        w.push(later - 3, ev(2, later));
        assert_eq!(drain(&mut w, later), vec![2]);
    }

    #[test]
    fn overflow_horizon_still_fires() {
        let mut w = CompletionWheel::new();
        let far = 10 + WHEEL_SLOTS as u64 * 2;
        w.push(10, ev(7, far));
        assert_eq!(w.len(), 1);
        // Nothing fires while the event is beyond the horizon.
        assert_eq!(drain(&mut w, far - 1), Vec::<u64>::new());
        assert_eq!(drain(&mut w, far), vec![7]);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn clear_empties_everything() {
        let mut w = CompletionWheel::new();
        w.push(0, ev(1, 3));
        w.push(0, ev(2, 1000));
        w.clear();
        assert_eq!(w.len(), 0);
        assert_eq!(drain(&mut w, 3), Vec::<u64>::new());
    }
}
