//! Machine configurations: Table I of the paper as code.

use crate::mem::HierarchyCfg;
use crate::predict::PredictorKind;

/// Which front-end/recovery model a machine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsaKind {
    /// The conventional renaming superscalar (RV32IM, RAM-based RMT,
    /// ROB-walking recovery).
    Ss,
    /// STRAIGHT (RP-based operand determination, one-ROB-read
    /// recovery).
    Straight,
}

/// Functional-unit counts (Table I "Exec Unit" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitCfg {
    /// Simple integer ALUs.
    pub alu: u32,
    /// Pipelined multipliers (3-cycle latency).
    pub mul: u32,
    /// Unpipelined dividers (12-cycle occupancy).
    pub div: u32,
    /// Branch units.
    pub bc: u32,
    /// Memory ports (AGU + cache access).
    pub mem: u32,
}

/// A full machine configuration (one column of Table I).
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Display name ("SS-4way", "STRAIGHT-2way", ...).
    pub name: String,
    /// Front-end model.
    pub isa: IsaKind,
    /// Instructions fetched/renamed/dispatched per cycle.
    pub fetch_width: u32,
    /// Front-end depth in cycles (8 for SS, 6 for STRAIGHT — the
    /// removal of the rename stages, Section III-B).
    pub frontend_latency: u32,
    /// Reorder-buffer entries.
    pub rob_capacity: u32,
    /// Scheduler (issue queue) entries.
    pub iq_entries: u32,
    /// Issue width.
    pub issue_width: u32,
    /// Physical register-file size.
    pub phys_regs: u32,
    /// Load-queue entries.
    pub lsq_ld: u32,
    /// Store-queue entries.
    pub lsq_st: u32,
    /// Retire width.
    pub commit_width: u32,
    /// Functional units.
    pub units: UnitCfg,
    /// Direction predictor.
    pub predictor: PredictorKind,
    /// Memory hierarchy.
    pub hierarchy: HierarchyCfg,
    /// Idealize the misprediction penalty to (nearly) zero — the
    /// "SS no penalty" configuration of Figure 13.
    pub ideal_recovery: bool,
    /// STRAIGHT: the ISA distance limit the binary was compiled for;
    /// `phys_regs` must be ≥ `max_distance + rob_capacity`
    /// (Section III-B's MAX_RP rule).
    pub max_distance: u32,
    /// Forward-progress watchdog: abort the simulation when no
    /// instruction commits for this many consecutive cycles. Any
    /// genuine program makes commit progress orders of magnitude
    /// faster than this (the worst structural stall is a full-window
    /// chain of L3 misses), so firing always means the core — or an
    /// injected fault — deadlocked.
    pub watchdog_limit: u64,
    /// Opt-in hazard sanitizer: retire-time cross-validation of every
    /// committed instruction against a shadow functional emulator
    /// (control flow and result values), plus STRAIGHT RP-vs-ROB
    /// consistency checks.
    pub sanitizer: bool,
}

impl MachineConfig {
    /// SS-4way: the high-end desktop/server-class baseline.
    #[must_use]
    pub fn ss_4way() -> MachineConfig {
        MachineConfig {
            name: "SS-4way".into(),
            isa: IsaKind::Ss,
            fetch_width: 6,
            frontend_latency: 8,
            rob_capacity: 224,
            iq_entries: 96,
            issue_width: 4,
            phys_regs: 256,
            lsq_ld: 72,
            lsq_st: 56,
            commit_width: 4,
            units: UnitCfg { alu: 4, mul: 2, div: 1, bc: 4, mem: 4 },
            predictor: PredictorKind::Gshare,
            hierarchy: HierarchyCfg::four_way(),
            ideal_recovery: false,
            max_distance: 31,
            watchdog_limit: 5_000,
            sanitizer: false,
        }
    }

    /// STRAIGHT-4way: same sizes, STRAIGHT front-end.
    #[must_use]
    pub fn straight_4way() -> MachineConfig {
        MachineConfig {
            name: "STRAIGHT-4way".into(),
            isa: IsaKind::Straight,
            frontend_latency: 6,
            ..MachineConfig::ss_4way()
        }
    }

    /// SS-2way: the mobile-class baseline.
    #[must_use]
    pub fn ss_2way() -> MachineConfig {
        MachineConfig {
            name: "SS-2way".into(),
            isa: IsaKind::Ss,
            fetch_width: 2,
            frontend_latency: 8,
            rob_capacity: 64,
            iq_entries: 16,
            issue_width: 2,
            phys_regs: 96,
            lsq_ld: 48,
            lsq_st: 48,
            commit_width: 3,
            units: UnitCfg { alu: 2, mul: 1, div: 1, bc: 2, mem: 2 },
            predictor: PredictorKind::Gshare,
            hierarchy: HierarchyCfg::two_way(),
            ideal_recovery: false,
            max_distance: 31,
            watchdog_limit: 5_000,
            sanitizer: false,
        }
    }

    /// STRAIGHT-2way: same sizes, STRAIGHT front-end.
    #[must_use]
    pub fn straight_2way() -> MachineConfig {
        MachineConfig {
            name: "STRAIGHT-2way".into(),
            isa: IsaKind::Straight,
            frontend_latency: 6,
            ..MachineConfig::ss_2way()
        }
    }

    /// Swaps in the TAGE predictor (Figure 14).
    #[must_use]
    pub fn with_tage(mut self) -> MachineConfig {
        self.predictor = PredictorKind::Tage;
        self.name.push_str("+TAGE");
        self
    }

    /// Idealizes the misprediction penalty (Figure 13's "SS no
    /// penalty").
    #[must_use]
    pub fn with_ideal_recovery(mut self) -> MachineConfig {
        self.ideal_recovery = true;
        self.name.push_str("+noPenalty");
        self
    }

    /// Enables the retire-time hazard sanitizer (shadow-emulator
    /// cross-validation and STRAIGHT RP checks).
    #[must_use]
    pub fn with_sanitizer(mut self) -> MachineConfig {
        self.sanitizer = true;
        self.name.push_str("+sanitizer");
        self
    }

    /// Overrides the forward-progress watchdog limit (commit-free
    /// cycles before the simulation aborts).
    #[must_use]
    pub fn with_watchdog(mut self, limit: u64) -> MachineConfig {
        self.watchdog_limit = limit;
        self
    }

    /// ROB-walk width per recovery cycle (the paper sets it to the
    /// front-end width).
    #[must_use]
    pub fn walk_width(&self) -> u32 {
        self.fetch_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_invariants() {
        for cfg in [
            MachineConfig::ss_2way(),
            MachineConfig::ss_4way(),
            MachineConfig::straight_2way(),
            MachineConfig::straight_4way(),
        ] {
            // The paper equalizes sizes between SS and STRAIGHT.
            assert!(cfg.phys_regs >= cfg.rob_capacity);
            if cfg.isa == IsaKind::Straight {
                // MAX_RP = max distance + ROB entries must fit.
                assert!(cfg.phys_regs >= cfg.max_distance + cfg.rob_capacity - 1);
                assert_eq!(cfg.frontend_latency, 6);
            } else {
                assert_eq!(cfg.frontend_latency, 8);
            }
        }
        assert_eq!(MachineConfig::ss_4way().fetch_width, 6);
        assert_eq!(MachineConfig::ss_2way().commit_width, 3);
        assert!(MachineConfig::ss_4way().hierarchy.l3.is_some());
        assert!(MachineConfig::ss_2way().hierarchy.l3.is_none());
    }

    #[test]
    fn modifiers_rename() {
        let c = MachineConfig::ss_2way().with_tage().with_ideal_recovery();
        assert!(c.name.contains("TAGE"));
        assert!(c.ideal_recovery);
    }

    #[test]
    fn robustness_modifiers() {
        let c = MachineConfig::straight_2way().with_sanitizer().with_watchdog(123);
        assert!(c.sanitizer);
        assert!(c.name.contains("sanitizer"));
        assert_eq!(c.watchdog_limit, 123);
        assert!(!MachineConfig::ss_4way().sanitizer);
        assert_eq!(MachineConfig::ss_4way().watchdog_limit, 5_000);
    }
}
