//! The wakeup/select scheduler state, in data-oriented form.
//!
//! Instead of scanning every issue-queue entry each cycle, a
//! dispatched uop subscribes to the wakeup list of each not-yet-ready
//! source tag; the completion that readies its last operand sets its
//! bit in the packed ready set, and select only ever examines ready
//! entries. Two changes from the previous sorted-`Vec` ready queue:
//!
//! * readiness is one bit per ROB slot ([`SlotBits`]), so
//!   insert/remove are `O(1)` bit flips instead of `O(n)` memmoves,
//!   and the age-ordered select walk is a branch-light scan over
//!   packed words starting at the ROB head slot (ring order ≡
//!   ascending sequence number, because ROB slots are
//!   `seq mod capacity`);
//! * wakeup waiters are generational [`SlotHandle`]s validated by the
//!   ROB slab, not `(seq, uid)` pairs re-resolved through relative
//!   indexing.

use super::slab::{SlotBits, SlotHandle};

/// Scheduler (issue queue) state.
#[derive(Debug)]
pub(crate) struct Scheduler {
    /// Per-physical-register wakeup lists. A stale waiter (squashed or
    /// recycled entry) is dead weight in its list until the tag's next
    /// completion drains it; the ROB rejects it by generation then.
    pub wakeup: Vec<Vec<SlotHandle>>,
    /// Operand-ready entries, one bit per ROB slot. Loads blocked on
    /// LSQ conditions and stores blocked on structural hazards keep
    /// their bit and retry, exactly like the previous ready queue.
    pub ready: SlotBits,
    /// Occupied scheduler slots (ready + waiting), for dispatch
    /// backpressure.
    pub occupancy: usize,
    /// Recycled select-order snapshot (ROB slots, age order), so
    /// select does not allocate every cycle.
    pub scratch: Vec<u32>,
}

impl Scheduler {
    /// Scheduler state for `phys` physical registers over a ROB slab
    /// of `rob_slots` slots.
    pub fn new(phys: usize, rob_slots: usize) -> Scheduler {
        Scheduler {
            wakeup: vec![Vec::new(); phys],
            ready: SlotBits::new(rob_slots),
            occupancy: 0,
            scratch: Vec::new(),
        }
    }

    /// Empties all scheduler state (core reset), keeping allocations.
    pub fn clear(&mut self) {
        for list in &mut self.wakeup {
            list.clear();
        }
        self.ready.clear_all();
        self.occupancy = 0;
    }
}
