//! The cycle-accurate out-of-order cores (Section III and V-A of the
//! paper): a shared back-end with ISA-specific front-ends — the
//! renaming superscalar (`SS`) and STRAIGHT.

mod config;
mod core;
mod lsq;
mod rob;
mod sched;
mod slab;
mod stats;
mod uop;
mod wheel;

pub use config::{IsaKind, MachineConfig, UnitCfg};
pub use core::{simulate, Core, CoreError, DEFAULT_MAX_CYCLES};
#[cfg(feature = "stage-profile")]
pub use core::STAGE_NAMES;
pub use stats::{intern_kind, PowerEvents, SimExit, SimResult, SimStats, WatchdogReport, KIND_NAMES};
pub use uop::{ControlInfo, ExecUnit, FuncOp, RawInst, UOp};
