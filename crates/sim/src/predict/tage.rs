//! An 8-component TAGE predictor (Seznec, "A new case for the TAGE
//! branch predictor", MICRO 2011) — the configuration Figure 14 of the
//! STRAIGHT paper swaps in for gshare.
//!
//! One bimodal base table plus seven tagged components with
//! geometrically increasing history lengths. Each tagged entry holds a
//! partial tag, a 3-bit signed counter, and a 2-bit useful counter.

use super::DirectionPredictor;

const NUM_TAGGED: usize = 7;
const HIST_LENGTHS: [u32; NUM_TAGGED] = [5, 9, 15, 25, 44, 76, 130];
const TAGGED_BITS: u32 = 10; // 1 K entries per component
const TAG_BITS: u32 = 9;
const BASE_BITS: u32 = 13; // 8 K bimodal entries
const MAX_HIST: usize = 160;

#[derive(Debug, Clone, Copy, Default)]
struct TaggedEntry {
    tag: u16,
    ctr: i8, // -4..=3
    useful: u8,
}

/// The TAGE predictor with speculative global history and squash
/// repair.
#[derive(Debug)]
pub struct Tage {
    base: Vec<u8>,
    tagged: Vec<Vec<TaggedEntry>>,
    /// Global history bits, newest at index 0.
    history: Vec<bool>,
    spec_history: Vec<bool>,
    /// Deterministic LFSR for the allocation tie-breaking.
    rng: u32,
    /// Periodic useful-bit reset counter.
    tick: u32,
}

impl Tage {
    /// Builds an empty predictor.
    #[must_use]
    pub fn new() -> Tage {
        Tage {
            base: vec![1; 1 << BASE_BITS],
            tagged: vec![vec![TaggedEntry::default(); 1 << TAGGED_BITS]; NUM_TAGGED],
            history: vec![false; MAX_HIST],
            spec_history: vec![false; MAX_HIST],
            rng: 0x1234_5678,
            tick: 0,
        }
    }

    fn next_rand(&mut self) -> u32 {
        // xorshift32
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.rng = x;
        x
    }

    /// Folded history hash over the first `len` bits.
    fn fold(history: &[bool], len: u32, out_bits: u32) -> u32 {
        let mut acc = 0u32;
        let mut chunk = 0u32;
        let mut nbits = 0;
        for &b in history.iter().take(len as usize) {
            chunk = (chunk << 1) | u32::from(b);
            nbits += 1;
            if nbits == out_bits {
                acc ^= chunk;
                chunk = 0;
                nbits = 0;
            }
        }
        acc ^= chunk;
        acc & ((1 << out_bits) - 1)
    }

    fn tagged_index(&self, pc: u32, comp: usize, history: &[bool]) -> usize {
        let h = Self::fold(history, HIST_LENGTHS[comp], TAGGED_BITS);
        ((((pc >> 2) ^ (pc >> (2 + comp as u32 + 1))) ^ h) & ((1 << TAGGED_BITS) - 1)) as usize
    }

    fn tag_of(&self, pc: u32, comp: usize, history: &[bool]) -> u16 {
        let h1 = Self::fold(history, HIST_LENGTHS[comp], TAG_BITS);
        let h2 = Self::fold(history, HIST_LENGTHS[comp], TAG_BITS - 1) << 1;
        (((pc >> 2) ^ h1 ^ h2) & ((1 << TAG_BITS) - 1)) as u16
    }

    fn base_index(&self, pc: u32) -> usize {
        ((pc >> 2) & ((1 << BASE_BITS) - 1)) as usize
    }

    /// (provider component or None=base, prediction, alternate pred).
    fn lookup(&self, pc: u32, history: &[bool]) -> (Option<usize>, bool, bool) {
        let mut provider = None;
        let mut alt: Option<bool> = None;
        let mut pred = self.base[self.base_index(pc)] >= 2;
        // Search longest history first.
        for comp in (0..NUM_TAGGED).rev() {
            let idx = self.tagged_index(pc, comp, history);
            let e = &self.tagged[comp][idx];
            if e.tag == self.tag_of(pc, comp, history) {
                if provider.is_none() {
                    provider = Some(comp);
                    pred = e.ctr >= 0;
                } else if alt.is_none() {
                    alt = Some(e.ctr >= 0);
                }
            }
        }
        let alt = alt.unwrap_or(self.base[self.base_index(pc)] >= 2);
        (provider, pred, alt)
    }

    fn push_history(history: &mut Vec<bool>, taken: bool) {
        history.insert(0, taken);
        history.truncate(MAX_HIST);
    }
}

impl Default for Tage {
    fn default() -> Self {
        Tage::new()
    }
}

impl DirectionPredictor for Tage {
    fn predict(&mut self, pc: u32) -> bool {
        let (_, pred, _) = self.lookup(pc, &self.spec_history.clone());
        Self::push_history(&mut self.spec_history, pred);
        pred
    }

    fn update(&mut self, pc: u32, taken: bool, _fetch_pred: bool) {
        let history = self.history.clone();
        let (provider, pred, alt) = self.lookup(pc, &history);
        match provider {
            Some(comp) => {
                let idx = self.tagged_index(pc, comp, &history);
                let tag = self.tag_of(pc, comp, &history);
                let e = &mut self.tagged[comp][idx];
                debug_assert_eq!(e.tag, tag);
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                if pred != alt {
                    if pred == taken {
                        e.useful = (e.useful + 1).min(3);
                    } else {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
            }
            None => {
                let idx = self.base_index(pc);
                let c = &mut self.base[idx];
                if taken {
                    *c = (*c + 1).min(3);
                } else {
                    *c = c.saturating_sub(1);
                }
            }
        }
        // Allocate on misprediction in a longer component.
        if pred != taken {
            let start = provider.map(|p| p + 1).unwrap_or(0);
            if start < NUM_TAGGED {
                // Find a not-useful entry among the longer components,
                // preferring shorter ones with a random skip.
                let mut allocated = false;
                let skip = (self.next_rand() & 1) as usize;
                let mut candidates: Vec<usize> = (start..NUM_TAGGED).collect();
                if candidates.len() > 1 && skip == 1 {
                    candidates.remove(0);
                }
                for comp in candidates {
                    let idx = self.tagged_index(pc, comp, &history);
                    if self.tagged[comp][idx].useful == 0 {
                        let tag = self.tag_of(pc, comp, &history);
                        self.tagged[comp][idx] =
                            TaggedEntry { tag, ctr: if taken { 0 } else { -1 }, useful: 0 };
                        allocated = true;
                        break;
                    }
                }
                if !allocated {
                    for comp in start..NUM_TAGGED {
                        let idx = self.tagged_index(pc, comp, &history);
                        let e = &mut self.tagged[comp][idx];
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
            }
        }
        // Periodic graceful useful-bit aging.
        self.tick += 1;
        if self.tick.is_multiple_of(256 * 1024) {
            for comp in &mut self.tagged {
                for e in comp.iter_mut() {
                    e.useful >>= 1;
                }
            }
        }
        Self::push_history(&mut self.history, taken);
    }

    fn recover(&mut self) {
        self.spec_history = self.history.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_bias() {
        let mut t = Tage::new();
        for _ in 0..16 {
            let p = t.predict(0x400);
            t.update(0x400, true, p);
        }
        assert!(t.predict(0x400));
    }

    #[test]
    fn learns_long_period_pattern_better_than_gshare_style_history() {
        // Period-24 pattern: 23 taken, 1 not-taken — the long-history
        // components should capture it.
        let mut t = Tage::new();
        let mut correct = 0;
        let mut total = 0;
        for i in 0..24 * 400 {
            let outcome = i % 24 != 23;
            let p = t.predict(0x800);
            if i >= 24 * 200 {
                total += 1;
                if p == outcome {
                    correct += 1;
                }
            }
            t.update(0x800, outcome, p);
            if p != outcome {
                t.recover(); // pipeline repairs history on mispredicts
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.97, "TAGE accuracy on period-24 pattern: {acc}");
    }

    #[test]
    fn recover_restores_history() {
        let mut t = Tage::new();
        let p = t.predict(0x100);
        let _ = t.predict(0x104);
        t.recover();
        assert_eq!(t.spec_history, t.history);
        t.update(0x100, p, p);
    }

    #[test]
    fn fold_is_stable_and_bounded() {
        let h = vec![true; 64];
        let f = Tage::fold(&h, 44, 10);
        assert!(f < 1024);
        assert_eq!(f, Tage::fold(&h, 44, 10));
    }
}
