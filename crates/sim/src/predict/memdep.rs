//! Store-set memory-dependence predictor (Chrysos & Emer style,
//! simplified): loads that have violated in the past are predicted to
//! depend on older stores and wait for their addresses.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-shift hasher for the `u32` load-PC keys: the default
/// SipHash is overkill (and measurably slow) on the per-load-issue
/// prediction path, and we never iterate the table, so hash quality
/// only affects bucket distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct PcHasher(u64);

impl Hasher for PcHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic path (unused by u32 keys, kept correct anyway).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u32(&mut self, n: u32) {
        let x = u64::from(n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = x ^ (x >> 29);
    }
}

/// Per-load-PC dependence predictor with a small confidence counter.
#[derive(Debug, Clone, Default)]
pub struct StoreSets {
    /// Load PC → 2-bit "waits for stores" confidence.
    table: HashMap<u32, u8, BuildHasherDefault<PcHasher>>,
    /// Sparse-decay state. Per instance, NOT shared: an earlier
    /// version kept this in a `thread_local!`, so a fresh predictor's
    /// decay schedule depended on every simulation that had run
    /// earlier on the same thread — two identical `Core`s could
    /// produce different statistics. Owning the counter makes a fresh
    /// predictor's behaviour a pure function of its own inputs.
    decay_counter: u32,
}

impl StoreSets {
    /// Empty predictor: all loads predicted independent.
    #[must_use]
    pub fn new() -> StoreSets {
        StoreSets::default()
    }

    /// Should the load at `pc` wait for older stores with unknown
    /// addresses?
    #[must_use]
    pub fn predict_dependent(&self, pc: u32) -> bool {
        self.table.get(&pc).copied().unwrap_or(0) >= 2
    }

    /// Trains on a detected memory-order violation by the load at
    /// `pc`.
    pub fn on_violation(&mut self, pc: u32) {
        let c = self.table.entry(pc).or_insert(0);
        *c = (*c + 2).min(3);
    }

    /// Slowly decays confidence when the load executed early and no
    /// violation occurred: roughly 1/64 of calls (deterministically,
    /// keyed on the instance counter folded with the PC) release one
    /// step of trained dependence.
    pub fn on_no_violation(&mut self, pc: u32) {
        if let Some(c) = self.table.get_mut(&pc) {
            if *c > 0 {
                let v = self.decay_counter.wrapping_add(0x9e37_79b9).wrapping_add(pc);
                self.decay_counter = v;
                if v & 63 == 0 {
                    *c -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_trains_dependence() {
        let mut s = StoreSets::new();
        assert!(!s.predict_dependent(0x100));
        s.on_violation(0x100);
        assert!(s.predict_dependent(0x100));
    }

    #[test]
    fn decay_eventually_releases() {
        let mut s = StoreSets::new();
        s.on_violation(0x200);
        for _ in 0..100_000 {
            s.on_no_violation(0x200);
        }
        assert!(!s.predict_dependent(0x200));
    }

    #[test]
    fn fresh_predictors_decay_identically() {
        // Regression test for the `thread_local!` decay counter: the
        // decay trace of a fresh predictor must not depend on how many
        // decay calls earlier predictors on this thread performed.
        let trace = |warmup: u32| {
            // A prior, unrelated predictor does `warmup` decay calls
            // on this same thread (this is what used to leak through
            // the thread-local counter).
            let mut earlier = StoreSets::new();
            earlier.on_violation(0x40);
            for _ in 0..warmup {
                earlier.on_no_violation(0x40);
            }
            // The predictor under test must be unaffected.
            let mut s = StoreSets::new();
            s.on_violation(0x80);
            (0..512).map(|_| {
                s.on_no_violation(0x80);
                s.predict_dependent(0x80)
            }).collect::<Vec<bool>>()
        };
        assert_eq!(trace(0), trace(17), "decay schedule leaked across predictor instances");
    }
}
