//! Store-set memory-dependence predictor (Chrysos & Emer style,
//! simplified): loads that have violated in the past are predicted to
//! depend on older stores and wait for their addresses.

use std::collections::HashMap;

/// Per-load-PC dependence predictor with a small confidence counter.
#[derive(Debug, Clone, Default)]
pub struct StoreSets {
    /// Load PC → 2-bit "waits for stores" confidence.
    table: HashMap<u32, u8>,
}

impl StoreSets {
    /// Empty predictor: all loads predicted independent.
    #[must_use]
    pub fn new() -> StoreSets {
        StoreSets::default()
    }

    /// Should the load at `pc` wait for older stores with unknown
    /// addresses?
    #[must_use]
    pub fn predict_dependent(&self, pc: u32) -> bool {
        self.table.get(&pc).copied().unwrap_or(0) >= 2
    }

    /// Trains on a detected memory-order violation by the load at
    /// `pc`.
    pub fn on_violation(&mut self, pc: u32) {
        let c = self.table.entry(pc).or_insert(0);
        *c = (*c + 2).min(3);
    }

    /// Slowly decays confidence when the load executed early and no
    /// violation occurred.
    pub fn on_no_violation(&mut self, pc: u32) {
        if let Some(c) = self.table.get_mut(&pc) {
            if *c > 0 && fastrand_decay(pc) {
                *c -= 1;
            }
        }
    }
}

/// Deterministic sparse decay (roughly 1/64 of the time), keyed on a
/// per-call counter folded with the PC so behaviour is reproducible.
fn fastrand_decay(pc: u32) -> bool {
    use std::cell::Cell;
    thread_local! {
        static COUNTER: Cell<u32> = const { Cell::new(0) };
    }
    COUNTER.with(|c| {
        let v = c.get().wrapping_add(0x9e37_79b9).wrapping_add(pc);
        c.set(v);
        v & 63 == 0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_trains_dependence() {
        let mut s = StoreSets::new();
        assert!(!s.predict_dependent(0x100));
        s.on_violation(0x100);
        assert!(s.predict_dependent(0x100));
    }

    #[test]
    fn decay_eventually_releases() {
        let mut s = StoreSets::new();
        s.on_violation(0x200);
        for _ in 0..100_000 {
            s.on_no_violation(0x200);
        }
        assert!(!s.predict_dependent(0x200));
    }
}
