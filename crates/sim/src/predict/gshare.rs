//! Gshare: global history XOR PC indexing a table of 2-bit counters.
//! Table I: 10-bit global history, 32 K entries.

use super::DirectionPredictor;

const TABLE_BITS: u32 = 15; // 32 K entries
const HISTORY_BITS: u32 = 10;

/// Gshare direction predictor with speculative history and
/// squash repair.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<u8>,
    /// Architectural (retire-consistent) history — restored on squash.
    history: u32,
    /// Speculative history updated at predict time.
    spec_history: u32,
}

impl Gshare {
    /// Builds a weakly-not-taken-initialized predictor.
    #[must_use]
    pub fn new() -> Gshare {
        Gshare { table: vec![1; 1 << TABLE_BITS], history: 0, spec_history: 0 }
    }

    fn index(&self, pc: u32, history: u32) -> usize {
        let mask = (1u32 << TABLE_BITS) - 1;
        (((pc >> 2) ^ (history << (TABLE_BITS - HISTORY_BITS))) & mask) as usize
    }
}

impl Default for Gshare {
    fn default() -> Self {
        Gshare::new()
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&mut self, pc: u32) -> bool {
        let idx = self.index(pc, self.spec_history);
        let taken = self.table[idx] >= 2;
        self.spec_history = ((self.spec_history << 1) | u32::from(taken)) & ((1 << HISTORY_BITS) - 1);
        taken
    }

    fn update(&mut self, pc: u32, taken: bool, _pred: bool) {
        let idx = self.index(pc, self.history);
        let c = &mut self.table[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u32::from(taken)) & ((1 << HISTORY_BITS) - 1);
    }

    fn recover(&mut self) {
        self.spec_history = self.history;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_bias() {
        let mut g = Gshare::new();
        for _ in 0..8 {
            let p = g.predict(0x1000);
            g.update(0x1000, true, p);
        }
        assert!(g.predict(0x1000));
    }

    #[test]
    fn learns_alternation_through_history() {
        let mut g = Gshare::new();
        let mut correct = 0;
        let mut toggle = false;
        for i in 0..2000 {
            let p = g.predict(0x2000);
            if i >= 1000 && p == toggle {
                correct += 1;
            }
            g.update(0x2000, toggle, p);
            if p != toggle {
                // The pipeline squashes and repairs speculative
                // history on every mispredict; model that here.
                g.recover();
            }
            toggle = !toggle;
        }
        assert!(correct > 900, "gshare should learn a period-2 pattern, got {correct}/1000");
    }

    #[test]
    fn recover_resets_speculative_history() {
        let mut g = Gshare::new();
        let p0 = g.predict(0x1000);
        let _ = g.predict(0x1004);
        let _ = g.predict(0x1008);
        g.recover();
        assert_eq!(g.spec_history, g.history);
        g.update(0x1000, p0, p0);
    }
}
