//! Return-address stack with checkpoint/restore for squash repair.

/// Stack depth; a power of two so the circular index is a mask.
const RAS_ENTRIES: usize = 16;

/// A small circular return-address stack. Fetch pushes on calls and
/// pops on returns speculatively; every in-flight branch checkpoints
/// `(top_index, top_value)` so a squash can repair the common
/// single-divergence case.
#[derive(Debug, Clone)]
pub struct Ras {
    stack: [u32; RAS_ENTRIES],
    top: usize,
}

/// A checkpoint of the RAS state taken at prediction time.
///
/// `Default` is the checkpoint of a freshly constructed [`Ras`]
/// (empty stack), used to pre-fill the data-oriented ROB's checkpoint
/// column before any entry is dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RasCheckpoint {
    top: usize,
    value: u32,
}

impl Ras {
    /// A 16-entry stack (typical for the modeled core class).
    #[must_use]
    pub fn new() -> Ras {
        Ras { stack: [0; RAS_ENTRIES], top: 0 }
    }

    /// Pushes a return address (call).
    pub fn push(&mut self, addr: u32) {
        self.top = (self.top + 1) % RAS_ENTRIES;
        self.stack[self.top] = addr;
    }

    /// Pops the predicted return address (return).
    pub fn pop(&mut self) -> u32 {
        let v = self.stack[self.top];
        self.top = (self.top + RAS_ENTRIES - 1) % RAS_ENTRIES;
        v
    }

    /// Takes a checkpoint for later repair.
    #[must_use]
    pub fn checkpoint(&self) -> RasCheckpoint {
        RasCheckpoint { top: self.top, value: self.stack[self.top] }
    }

    /// Restores a checkpoint after a squash.
    pub fn restore(&mut self, cp: RasCheckpoint) {
        self.top = cp.top;
        self.stack[cp.top] = cp.value;
    }
}

impl Default for Ras {
    fn default() -> Self {
        Ras::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_nesting() {
        let mut r = Ras::new();
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), 0x200);
        assert_eq!(r.pop(), 0x100);
    }

    #[test]
    fn checkpoint_repairs_wrong_path_pushes() {
        let mut r = Ras::new();
        r.push(0x100);
        let cp = r.checkpoint();
        r.push(0xbad);
        r.push(0xbad2);
        r.restore(cp);
        assert_eq!(r.pop(), 0x100);
    }

    #[test]
    fn checkpoint_repairs_wrong_path_pop() {
        let mut r = Ras::new();
        r.push(0x100);
        let cp = r.checkpoint();
        let _ = r.pop(); // wrong-path return
        r.restore(cp);
        assert_eq!(r.pop(), 0x100);
    }
}
