//! Branch direction predictors (gshare and 8-component TAGE), the
//! return-address stack, and a store-set memory-dependence predictor.

mod gshare;
mod memdep;
mod ras;
mod tage;

pub use gshare::Gshare;
pub use memdep::StoreSets;
pub use ras::{Ras, RasCheckpoint};
pub use tage::Tage;

/// A conditional-branch direction predictor.
pub trait DirectionPredictor {
    /// Predicts taken/not-taken for the branch at `pc`.
    fn predict(&mut self, pc: u32) -> bool;
    /// Trains with the resolved outcome. `pred` is what was predicted
    /// at fetch so global-history-based predictors can repair state.
    fn update(&mut self, pc: u32, taken: bool, pred: bool);
    /// Repairs speculative history after a squash.
    fn recover(&mut self);
}

/// Which predictor a machine uses (Figures 11–13 use gshare; Figure
/// 14 swaps in TAGE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Gshare, 10-bit global history, 32 K entries (Table I).
    Gshare,
    /// 8-component CBP-TAGE (Figure 14).
    Tage,
}

/// Builds the configured predictor.
#[must_use]
pub fn build(kind: PredictorKind) -> Box<dyn DirectionPredictor> {
    match kind {
        PredictorKind::Gshare => Box::new(Gshare::new()),
        PredictorKind::Tage => Box::new(Tage::new()),
    }
}
