//! Deterministic fault injection for the robustness harness.
//!
//! A [`FaultKind`] names one microarchitectural disturbance; tests
//! schedule them at fixed cycles via
//! [`Core::schedule_fault`](crate::pipeline::Core::schedule_fault) and
//! assert that each injected fault is either *masked* (the program
//! still completes with the oracle-identical result), *recovered*
//! (absorbed by the machine's own speculation-recovery machinery), or
//! *detected* (the sanitizer or watchdog raises a typed trap) — never
//! a silent divergence from the functional emulator.

/// One injectable microarchitectural fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one bit of a physical register (a soft error in the PRF /
    /// STRAIGHT result ring). Detected by the sanitizer's retire-time
    /// value comparison when the corrupted value is live; masked when
    /// it is dead.
    PrfBitFlip {
        /// Physical register index (reduced modulo the file size).
        reg: u16,
        /// Bit position (reduced modulo 32).
        bit: u8,
    },
    /// Invert the next conditional-branch direction prediction
    /// (corrupted predictor state). Always recovered by normal
    /// misprediction recovery — the paper's Figure 4 machinery.
    ForceMispredict,
    /// Push garbage return addresses onto the return-address stack.
    /// Recovered by indirect-jump misprediction recovery.
    RasCorrupt {
        /// Number of garbage entries to push.
        slots: u32,
    },
    /// Drop every in-flight completion: issued instructions never
    /// write back, so their ROB entries stay un-done forever. Detected
    /// by the forward-progress watchdog.
    LoseCompletion,
}
