//! # straight-json
//!
//! A small, dependency-free JSON library used for the machine-readable
//! benchmark records (`BENCH_*.json`). The container image this
//! reproduction grows in has no network access to crates.io, so the
//! usual `serde`/`serde_json` pair is replaced by this crate: a value
//! model ([`Json`]), a deterministic serializer (object keys keep
//! insertion order, so repeated runs are byte-comparable), a strict
//! recursive-descent parser, and [`ToJson`]/[`FromJson`] conversion
//! traits standing in for `Serialize`/`Deserialize`.
//!
//! Numbers are stored as `f64`. Every counter in the simulator fits in
//! the 2^53 exactly-representable integer range (the largest cycle
//! budget is 2·10^10), and integral values are rendered without a
//! decimal point so records stay schema-stable.
//!
//! ```
//! use straight_json::{Json, ToJson};
//!
//! let v = Json::obj([("cycles", 1234u64.to_json()), ("ipc", 1.5f64.to_json())]);
//! let text = v.render();
//! assert_eq!(text, r#"{"cycles":1234,"ipc":1.5}"#);
//! assert_eq!(Json::parse(&text).unwrap(), v);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects preserve insertion order so serialization is
/// deterministic across runs (a requirement for the benchmark
/// trajectory's byte-comparable records).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an ordered list of key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// An error from parsing or from shaping a [`Json`] value into a
/// typed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// The input is not valid JSON.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// What the parser expected.
        msg: String,
    },
    /// The value is valid JSON but does not match the expected shape
    /// (missing field, wrong type, out-of-range number).
    Shape(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse { offset, msg } => write!(f, "parse error at byte {offset}: {msg}"),
            JsonError::Shape(msg) => write!(f, "shape error: {msg}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(fields: I) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a field of an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A required object field, as a shape error when absent.
    ///
    /// # Errors
    ///
    /// [`JsonError::Shape`] when `self` is not an object or lacks `key`.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError::Shape(format!("missing field `{key}`")))
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, when integral and in range.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the format of the `BENCH_*.json` files.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// [`JsonError::Parse`] with the byte offset of the first invalid
    /// construct.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("end of input"));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 {
        let _ = fmt::write(out, format_args!("{}", n as i64));
    } else {
        // `{:?}` on f64 prints the shortest string that round-trips.
        let _ = fmt::write(out, format_args!("{n:?}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::write(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, expected: &str) -> JsonError {
        JsonError::Parse { offset: self.pos, msg: format!("expected {expected}") }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("`{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(word))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            self.expect(b',')?;
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            self.expect(b',')?;
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The input is a &str, so any run of non-escape bytes is
            // valid UTF-8.
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| {
                JsonError::Parse { offset: start, msg: "invalid UTF-8".to_string() }
            })?);
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(self.err("closing `\"`")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| self.err("escape character"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let code = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&code) {
                    // A surrogate pair: require the low half.
                    if !(self.eat(b'\\') && self.eat(b'u')) {
                        return Err(self.err("low surrogate"));
                    }
                    let low = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(self.err("low surrogate"));
                    }
                    let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    char::from_u32(combined).ok_or_else(|| self.err("valid code point"))?
                } else {
                    char::from_u32(code).ok_or_else(|| self.err("valid code point"))?
                };
                out.push(c);
            }
            _ => return Err(self.err("a valid escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = *self.bytes.get(self.pos).ok_or_else(|| self.err("4 hex digits"))?;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("a hex digit")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        if !self.digits() {
            return Err(self.err("digits"));
        }
        if self.eat(b'.') && !self.digits() {
            return Err(self.err("fraction digits"));
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.digits() {
                return Err(self.err("exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("a number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError::Parse {
            offset: start,
            msg: format!("invalid number `{text}`"),
        })
    }

    fn digits(&mut self) -> bool {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos > start
    }
}

/// Conversion into [`Json`] — this repo's stand-in for
/// `serde::Serialize`.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion back out of [`Json`] — the stand-in for
/// `serde::Deserialize`.
pub trait FromJson: Sized {
    /// Reconstructs `Self`, or a [`JsonError::Shape`] naming what is
    /// missing or mistyped.
    ///
    /// # Errors
    ///
    /// [`JsonError::Shape`] when `value` does not have the expected
    /// structure.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_bool().ok_or_else(|| JsonError::Shape("expected a bool".to_string()))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_f64().ok_or_else(|| JsonError::Shape("expected a number".to_string()))
    }
}

macro_rules! int_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                let n = value
                    .as_f64()
                    .ok_or_else(|| JsonError::Shape("expected a number".to_string()))?;
                if n.fract() != 0.0 {
                    return Err(JsonError::Shape(format!("expected an integer, got {n}")));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(JsonError::Shape(format!(
                        "{} out of range for {}", n, stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

int_json!(u8, u16, u32, u64, usize, i32, i64);

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::Shape("expected a string".to_string()))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_arr()
            .ok_or_else(|| JsonError::Shape("expected an array".to_string()))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for BTreeMap<String, T> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<T: FromJson> FromJson for BTreeMap<String, T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_obj()
            .ok_or_else(|| JsonError::Shape("expected an object".to_string()))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), T::from_json(v)?)))
            .collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_arr() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::Shape("expected a 2-element array".to_string())),
        }
    }
}

/// Starts an ergonomic object builder; the usual way to write a
/// record. Keys keep insertion order, like [`Json::obj`].
///
/// ```
/// use straight_json::obj;
///
/// let v = obj().field("cycles", &1234u64).field("ipc", &1.5f64).build();
/// assert_eq!(v.render(), r#"{"cycles":1234,"ipc":1.5}"#);
/// ```
#[must_use]
pub fn obj() -> JsonBuilder {
    JsonBuilder::default()
}

/// An in-order JSON object under construction (see [`obj`]).
#[derive(Debug, Default, Clone)]
pub struct JsonBuilder {
    fields: Vec<(String, Json)>,
}

impl JsonBuilder {
    /// Appends a field, converting the value through [`ToJson`].
    /// `Option` fields serialize as `null` when `None`, and a
    /// pre-built [`Json`] value passes through unchanged.
    #[must_use]
    pub fn field<T: ToJson + ?Sized>(mut self, key: impl Into<String>, value: &T) -> JsonBuilder {
        self.fields.push((key.into(), value.to_json()));
        self
    }

    /// Finishes the object.
    #[must_use]
    pub fn build(self) -> Json {
        Json::Obj(self.fields)
    }
}

impl From<JsonBuilder> for Json {
    fn from(builder: JsonBuilder) -> Json {
        builder.build()
    }
}

impl ToJson for JsonBuilder {
    fn to_json(&self) -> Json {
        Json::Obj(self.fields.clone())
    }
}

/// A [`Json`] value is trivially convertible to itself, so pre-built
/// values can be passed to [`JsonBuilder::field`].
impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

/// Reads a typed field out of an object in one step.
///
/// # Errors
///
/// [`JsonError::Shape`] when the field is absent or has the wrong
/// type; the error names the field.
pub fn read_field<T: FromJson>(obj: &Json, key: &str) -> Result<T, JsonError> {
    T::from_json(obj.field(key)?)
        .map_err(|e| JsonError::Shape(format!("field `{key}`: {e}")))
}

/// FNV-1a 64-bit hash, used for configuration fingerprints and stdout
/// digests in the benchmark records.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_roundtrip() {
        let v = Json::obj([
            ("null", Json::Null),
            ("b", Json::Bool(true)),
            ("int", Json::Num(42.0)),
            ("neg", Json::Num(-7.0)),
            ("frac", Json::Num(0.1)),
            ("big", Json::Num(20_000_000_000.0)),
            ("s", Json::Str("hi \"there\"\n\t\\ ✓".to_string())),
            ("arr", Json::Arr(vec![Json::Num(1.0), Json::Str("x".into())])),
            ("nested", Json::obj([("k", Json::Arr(vec![]))])),
        ]);
        for text in [v.render(), v.render_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn integral_numbers_have_no_decimal_point() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(-1.0).render(), "-1");
        assert_eq!(Json::Num(20_000_000_000.0).render(), "20000000000");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let v = Json::parse(r#""aA\né😀""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\né😀"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{,}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn typed_conversions() {
        assert_eq!(u64::from_json(&Json::Num(7.0)).unwrap(), 7);
        assert!(u64::from_json(&Json::Num(7.5)).is_err());
        assert!(u32::from_json(&Json::Num(-1.0)).is_err());
        let m: BTreeMap<String, u64> =
            FromJson::from_json(&Json::parse(r#"{"a":1,"b":2}"#).unwrap()).unwrap();
        assert_eq!(m["a"], 1);
        let pairs: Vec<(u32, f64)> =
            FromJson::from_json(&Json::parse("[[1,0.5],[2,1.0]]").unwrap()).unwrap();
        assert_eq!(pairs, vec![(1, 0.5), (2, 1.0)]);
    }

    #[test]
    fn option_roundtrip() {
        assert_eq!(Option::<u64>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_json(&Json::Num(3.0)).unwrap(), Some(3));
        assert_eq!(None::<u64>.to_json(), Json::Null);
    }

    #[test]
    fn builder_matches_hand_rolled_objects() {
        let hand = Json::obj([
            ("a", 1u64.to_json()),
            ("b", Json::Null),
            ("c", Json::Arr(vec![Json::Num(1.0)])),
        ]);
        let built = obj()
            .field("a", &1u64)
            .field("b", &None::<u64>)
            .field("c", &vec![1u64])
            .build();
        assert_eq!(built, hand);
        assert_eq!(built.render(), hand.render());
        // Pre-built Json values pass through `field` unchanged, and
        // insertion order is preserved.
        let nested = obj().field("outer", &obj().field("inner", &2u32).build()).build();
        assert_eq!(nested.render(), r#"{"outer":{"inner":2}}"#);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
