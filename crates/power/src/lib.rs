//! # straight-power
//!
//! Activity-based power model reproducing the paper's RTL power
//! analysis (Section V-B / Figure 17).
//!
//! The paper synthesizes RTL for both cores and measures per-module
//! power with Cadence Joules at several clock frequencies. This crate
//! substitutes an **event-energy model**: the cycle-accurate
//! simulator counts accesses to each physical structure
//! ([`straight_sim::pipeline::PowerEvents`]); each access type is
//! assigned an energy weight (in arbitrary consistent units); dynamic
//! power is `energy x activity-rate x frequency`, and a
//! timing-pressure factor models the larger cells synthesis picks at
//! tighter clock targets. Figure 17 reports *relative* module powers,
//! which is exactly what this model can reproduce; the weights are
//! calibrated to the paper's disclosed anchor (rename logic ~ 5.7 %
//! of "other modules" for the small SS configuration).
//!
//! Modules follow the paper's grouping:
//!
//! * **rename logic** — the multi-ported RMT RAM, free list, and
//!   walk reads (SS); the RP subtractors (STRAIGHT's counterpart,
//!   Figure 3);
//! * **register file** — physical register file reads/writes;
//! * **other modules** — fetch/decode, scheduler, functional units,
//!   ROB, and LSQ (caches, buses, and the branch predictor are
//!   excluded, as in the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use straight_sim::pipeline::SimStats;

/// Energy weights per structure access (arbitrary units).
///
/// The defaults encode the structural argument of Section II-A: the
/// RMT is one of the most multi-ported RAMs in the core (three reads
/// and one write per instruction, ported by fetch width), so one RMT
/// access costs several times a plain adder operation; STRAIGHT's
/// operand determination is a row of small subtractors.
#[derive(Debug, Clone, Copy)]
pub struct EnergyWeights {
    /// RMT read port access.
    pub rmt_read: f64,
    /// RMT write port access.
    pub rmt_write: f64,
    /// Free-list push/pop.
    pub freelist_op: f64,
    /// ROB read during a recovery walk.
    pub rob_walk_read: f64,
    /// One RP add/subtract (STRAIGHT operand determination).
    pub rp_add: f64,
    /// Physical register file read.
    pub prf_read: f64,
    /// Physical register file write.
    pub prf_write: f64,
    /// Fetch of one instruction.
    pub fetch: f64,
    /// Decode of one instruction.
    pub decode: f64,
    /// Scheduler wakeup broadcast.
    pub iq_wakeup: f64,
    /// Scheduler insert.
    pub iq_insert: f64,
    /// Functional-unit operation.
    pub fu_op: f64,
    /// ROB allocate/commit access.
    pub rob_access: f64,
    /// LSQ associative search.
    pub lsq_search: f64,
    /// Leakage per cycle, rename module.
    pub leak_rename: f64,
    /// Leakage per cycle, register file.
    pub leak_regfile: f64,
    /// Leakage per cycle, other modules.
    pub leak_other: f64,
}

impl Default for EnergyWeights {
    fn default() -> EnergyWeights {
        EnergyWeights {
            rmt_read: 0.36,
            rmt_write: 0.55,
            freelist_op: 0.15,
            rob_walk_read: 0.30,
            rp_add: 0.02,
            prf_read: 2.0,
            prf_write: 2.6,
            fetch: 2.2,
            decode: 1.6,
            iq_wakeup: 2.8,
            iq_insert: 1.8,
            fu_op: 4.5,
            rob_access: 1.6,
            lsq_search: 2.5,
            leak_rename: 0.06,
            leak_regfile: 1.1,
            leak_other: 6.0,
        }
    }
}

/// Per-module power numbers (arbitrary units; meaningful as ratios).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModulePower {
    /// Rename logic (or STRAIGHT's operand determination).
    pub rename: f64,
    /// Physical register file.
    pub regfile: f64,
    /// Everything else in the core (no caches/buses/predictor).
    pub other: f64,
}

impl ModulePower {
    /// Total across modules.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.rename + self.regfile + self.other
    }
}

/// Synthesis timing-pressure factor: cells grow as the clock target
/// tightens, so power rises slightly super-linearly with frequency
/// (the effect visible in Figure 17's 2.5x/4.0x bars).
#[must_use]
pub fn timing_pressure(freq: f64) -> f64 {
    1.0 + 0.18 * (freq - 1.0)
}

/// Computes per-module power from simulator statistics at a relative
/// clock frequency (`1.0` = the baseline mobile-class clock).
#[must_use]
pub fn module_power(stats: &SimStats, freq: f64, w: &EnergyWeights) -> ModulePower {
    let cycles = stats.cycles.max(1) as f64;
    let e = &stats.events;
    let per_cycle = |energy: f64| energy / cycles;
    let rename_energy = e.rmt_reads as f64 * w.rmt_read
        + e.rmt_writes as f64 * w.rmt_write
        + e.freelist_ops as f64 * w.freelist_op
        + e.rob_walk_reads as f64 * w.rob_walk_read
        + e.rp_adds as f64 * w.rp_add;
    let regfile_energy = e.prf_reads as f64 * w.prf_read + e.prf_writes as f64 * w.prf_write;
    let other_energy = e.fetched as f64 * w.fetch
        + e.decoded as f64 * w.decode
        + e.iq_wakeups as f64 * w.iq_wakeup
        + e.iq_inserts as f64 * w.iq_insert
        + e.fu_ops as f64 * w.fu_op
        + (e.rob_writes + e.rob_commits) as f64 * w.rob_access
        + e.lsq_searches as f64 * w.lsq_search;
    let k = timing_pressure(freq);
    ModulePower {
        rename: (per_cycle(rename_energy) * freq + w.leak_rename) * k,
        regfile: (per_cycle(regfile_energy) * freq + w.leak_regfile) * k,
        other: (per_cycle(other_energy) * freq + w.leak_other) * k,
    }
}

/// One bar group of Figure 17: module powers for SS and STRAIGHT at a
/// set of frequencies, normalized to the SS baseline-frequency value
/// of each module.
#[derive(Debug, Clone)]
pub struct Figure17Row {
    /// Relative frequency.
    pub freq: f64,
    /// SS power (normalized per module to SS at 1.0x).
    pub ss: ModulePower,
    /// STRAIGHT power (same normalization).
    pub straight: ModulePower,
}

/// Builds the Figure 17 dataset from the two machines' statistics.
#[must_use]
pub fn figure17(ss: &SimStats, straight: &SimStats, freqs: &[f64]) -> Vec<Figure17Row> {
    let w = EnergyWeights::default();
    let base = module_power(ss, 1.0, &w);
    freqs
        .iter()
        .map(|&f| {
            let s = module_power(ss, f, &w);
            let t = module_power(straight, f, &w);
            Figure17Row {
                freq: f,
                ss: ModulePower {
                    rename: s.rename / base.rename,
                    regfile: s.regfile / base.regfile,
                    other: s.other / base.other,
                },
                straight: ModulePower {
                    rename: t.rename / base.rename,
                    regfile: t.regfile / base.regfile,
                    other: t.other / base.other,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use straight_sim::pipeline::PowerEvents;

    fn ss_like(cycles: u64, instrs: u64) -> SimStats {
        SimStats {
            cycles,
            events: PowerEvents {
                rmt_reads: instrs * 2,
                rmt_writes: instrs,
                freelist_ops: instrs,
                rob_walk_reads: instrs / 20,
                rp_adds: 0,
                prf_reads: instrs * 2,
                prf_writes: instrs,
                fetched: instrs + instrs / 5,
                decoded: instrs,
                iq_wakeups: instrs,
                iq_inserts: instrs,
                fu_ops: instrs,
                rob_writes: instrs,
                rob_commits: instrs,
                lsq_searches: instrs / 3,
            },
            ..SimStats::default()
        }
    }

    fn straight_like(cycles: u64, instrs: u64) -> SimStats {
        let mut s = ss_like(cycles, instrs);
        s.events.rmt_reads = 0;
        s.events.rmt_writes = 0;
        s.events.freelist_ops = 0;
        s.events.rob_walk_reads = 0;
        s.events.rp_adds = instrs * 3;
        s
    }

    #[test]
    fn rename_power_mostly_removed_in_straight() {
        let w = EnergyWeights::default();
        let ss = module_power(&ss_like(1000, 800), 1.0, &w);
        let st = module_power(&straight_like(1000, 900), 1.0, &w);
        assert!(st.rename < 0.2 * ss.rename, "straight {} vs ss {}", st.rename, ss.rename);
    }

    #[test]
    fn rename_share_matches_paper_anchor() {
        // Paper: rename ~ 5.7 % of "other modules" for the 2-way SS.
        let w = EnergyWeights::default();
        let ss = module_power(&ss_like(1000, 800), 1.0, &w);
        let share = ss.rename / ss.other;
        assert!(
            (0.03..=0.09).contains(&share),
            "rename/other share {share} outside the paper's ballpark"
        );
    }

    #[test]
    fn power_scales_superlinearly_with_frequency() {
        let w = EnergyWeights::default();
        let s = ss_like(1000, 800);
        let p1 = module_power(&s, 1.0, &w).total();
        let p4 = module_power(&s, 4.0, &w).total();
        assert!(p4 > 3.9 * p1, "4x clock should cost >= ~4x power: {p4} vs {p1}");
    }

    #[test]
    fn figure17_normalization() {
        let ss = ss_like(1000, 800);
        let st = straight_like(1100, 950);
        let rows = figure17(&ss, &st, &[1.0, 2.5, 4.0]);
        assert_eq!(rows.len(), 3);
        let base = &rows[0];
        assert!((base.ss.rename - 1.0).abs() < 1e-9);
        assert!((base.ss.regfile - 1.0).abs() < 1e-9);
        assert!((base.ss.other - 1.0).abs() < 1e-9);
        assert!(base.straight.rename < 0.2);
        assert!(rows[2].ss.other > rows[1].ss.other);
    }
}
