//! Differential tests: every MinC program must behave identically on
//! the IR interpreter, the RV32IM baseline, and STRAIGHT in all four
//! compilation configurations (RAW/RE+ × max distance 1023/31).

use straight_tests::check_differential;

#[test]
fn arithmetic_constants() {
    let b = check_differential("int main() { print_int(6 * 7); print_int(-13 / 4); print_int(-13 % 4); return 1; }");
    assert_eq!(b.stdout, "42\n-3\n-1\n");
    assert_eq!(b.exit_code, 1);
}

#[test]
fn parameters_and_expressions() {
    check_differential(
        "int mix(int a, int b, int c) { return (a + b) * c - (a ^ b) + (a << 2) - (b >> 1); }
         int main() { print_int(mix(11, 4, 3)); print_int(mix(-5, 9, -2)); return 0; }",
    );
}

#[test]
fn counted_loop_sum() {
    let b = check_differential(
        "int main() {
             int s = 0;
             int i;
             for (i = 1; i <= 100; i++) s += i;
             print_int(s);
             return 0;
         }",
    );
    assert_eq!(b.stdout, "5050\n");
}

#[test]
fn nested_loops_and_breaks() {
    check_differential(
        "int main() {
             int total = 0;
             int i;
             int j;
             for (i = 0; i < 10; i++) {
                 for (j = 0; j < 10; j++) {
                     if (j == 7) break;
                     if ((i + j) % 3 == 0) continue;
                     total += i * j;
                 }
             }
             print_int(total);
             return total % 256;
         }",
    );
}

#[test]
fn while_and_do_while() {
    check_differential(
        "int main() {
             int n = 27;
             int steps = 0;
             while (n != 1) {
                 if (n % 2 == 0) n = n / 2;
                 else n = 3 * n + 1;
                 steps++;
             }
             print_int(steps);
             int k = 0;
             do { k++; } while (k < 5);
             print_int(k);
             return 0;
         }",
    );
}

#[test]
fn recursion_fibonacci() {
    let b = check_differential(
        "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
         int main() { print_int(fib(15)); return 0; }",
    );
    assert_eq!(b.stdout, "610\n");
}

#[test]
fn mutual_recursion() {
    check_differential(
        "int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
         int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
         int main() { print_int(is_even(10)); print_int(is_odd(7)); return 0; }",
    );
}

#[test]
fn globals_and_arrays() {
    check_differential(
        "int acc = 3;
         int tab[16];
         int main() {
             int i;
             for (i = 0; i < 16; i++) tab[i] = i * acc;
             int s = 0;
             for (i = 0; i < 16; i++) s += tab[i];
             print_int(s);
             return 0;
         }",
    );
}

#[test]
fn local_arrays_and_pointers() {
    check_differential(
        "void fill(int* p, int n) { int i; for (i = 0; i < n; i++) p[i] = n - i; }
         int main() {
             int a[8];
             fill(a, 8);
             int s = 0;
             int i;
             for (i = 0; i < 8; i++) s = s * 10 + a[i];
             print_int(s);
             return 0;
         }",
    );
}

#[test]
fn addr_of_and_swap() {
    check_differential(
        "void swap(int* x, int* y) { int t = *x; *x = *y; *y = t; }
         int main() {
             int a = 3;
             int b = 9;
             swap(&a, &b);
             print_int(a * 10 + b);
             return 0;
         }",
    );
}

#[test]
fn strings_and_bytes() {
    let b = check_differential(
        "int strlen_(byte* s) { int n = 0; while (s[n]) n++; return n; }
         byte buf[32];
         int main() {
             byte* msg = \"straight\";
             int n = strlen_(msg);
             int i;
             for (i = 0; i < n; i++) buf[i] = msg[n - 1 - i];
             for (i = 0; i < n; i++) print_char(buf[i]);
             print_char('\\n');
             print_int(n);
             return 0;
         }",
    );
    assert_eq!(b.stdout, "thgiarts\n8\n");
}

#[test]
fn short_circuit_evaluation() {
    check_differential(
        "int calls = 0;
         int bump(int v) { calls++; return v; }
         int main() {
             if (bump(0) && bump(1)) print_int(111);
             if (bump(1) || bump(1)) print_int(222);
             print_int(calls);
             return 0;
         }",
    );
}

#[test]
fn many_live_values_across_merges() {
    // Stresses distance fixing: many values live across an if-else.
    check_differential(
        "int main() {
             int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
             int f = 6; int g = 7; int h = 8;
             int i;
             for (i = 0; i < 20; i++) {
                 if (i % 2 == 0) { a += b; c += d; }
                 else { e += f; g += h; }
             }
             print_int(a + c + e + g);
             print_int(b + d + f + h);
             return 0;
         }",
    );
}

#[test]
fn loop_live_through_value_re_plus() {
    // `secret` transits the loop untouched: the RE+ stack-storage rule
    // (Figure 10c) applies to it.
    check_differential(
        "int main() {
             int secret = 12345;
             int s = 0;
             int i;
             for (i = 0; i < 50; i++) s += i;
             print_int(s + secret);
             return 0;
         }",
    );
}

#[test]
fn call_inside_loop_spills() {
    check_differential(
        "int id(int x) { return x; }
         int main() {
             int s = 0;
             int keep = 777;
             int i;
             for (i = 0; i < 10; i++) s += id(i);
             print_int(s + keep);
             return 0;
         }",
    );
}

#[test]
fn division_corner_cases() {
    check_differential(
        "int main() {
             int zero = 0;
             int big = -2147483647 - 1;
             print_int(5 / zero);
             print_int(5 % zero);
             print_int(big / -1);
             print_int(big % -1);
             return 0;
         }",
    );
}

#[test]
fn byte_arithmetic_wraps() {
    check_differential(
        "int main() {
             byte b = 250;
             int i;
             for (i = 0; i < 10; i++) b = b + 1;
             print_int(b);
             return 0;
         }",
    );
}

#[test]
fn large_constants() {
    check_differential(
        "int main() {
             int big = 0x12345678;
             int neg = -123456789;
             print_int(big);
             print_int(neg);
             print_int(big ^ neg);
             return 0;
         }",
    );
}

#[test]
fn exit_mid_program() {
    let b = check_differential("int main() { print_int(1); exit(42); print_int(2); return 0; }");
    assert_eq!(b.stdout, "1\n");
    assert_eq!(b.exit_code, 42);
}

#[test]
fn deep_expression_pressure() {
    check_differential(
        "int main() {
             int a = 1; int b = 2; int c = 3; int d = 4;
             int r = ((a + b) * (c + d) - (a * c - b * d)) * ((a - d) * (b - c) + (a + d) * (b + c));
             print_int(r);
             return 0;
         }",
    );
}

#[test]
fn many_arguments() {
    check_differential(
        "int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
             return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g + 8*h;
         }
         int main() { print_int(sum8(1, 2, 3, 4, 5, 6, 7, 8)); return 0; }",
    );
}
