//! Exercises the `stage-profile` feature: per-stage host-time
//! counters must be populated for every stage once a real workload
//! has run, on both machine front-ends.
//!
//! Run with: `cargo test -p straight-tests --features stage-profile`

#![cfg(feature = "stage-profile")]

use straight_compiler::StraightOptions;
use straight_sim::pipeline::{Core, IsaKind, MachineConfig};
use straight_tests::{build_ir, build_riscv, build_straight};
use straight_workloads::dhrystone;

fn profile_of(isa: IsaKind) -> ([(&'static str, u64); 5], u64) {
    let module = build_ir(&dhrystone(20));
    let image = match isa {
        IsaKind::Straight => build_straight(&module, &StraightOptions::default()),
        IsaKind::Ss => build_riscv(&module),
    };
    let cfg = match isa {
        IsaKind::Straight => MachineConfig::straight_4way(),
        IsaKind::Ss => MachineConfig::ss_4way(),
    };
    let mut core = Core::new(image, cfg).expect("core builds");
    let result = core.run_in_place(200_000_000);
    assert_eq!(result.exit_code, Some(0), "workload completes: {:?}", result.exit);
    (core.stage_profile(), result.stats.cycles)
}

#[test]
fn all_stages_accumulate_host_time() {
    for isa in [IsaKind::Straight, IsaKind::Ss] {
        let (profile, cycles) = profile_of(isa);
        let total: u64 = profile.iter().map(|&(_, ns)| ns).sum();
        for (name, ns) in profile {
            assert!(ns > 0, "{isa:?}: stage {name} recorded no host time");
            eprintln!("{isa:?} {name:>8}: {:>8.2} ms ({:.1}%, {:.0} ns/cycle)",
                ns as f64 / 1e6, 100.0 * ns as f64 / total as f64,
                ns as f64 / cycles as f64);
        }
        eprintln!("{isa:?} total: {:.2} ms over {cycles} cycles ({:.0} ns/cycle)",
            total as f64 / 1e6, total as f64 / cycles as f64);
    }
}

#[test]
fn stage_names_match_profile_order() {
    let (profile, _) = profile_of(IsaKind::Straight);
    let names: Vec<&str> = profile.iter().map(|&(n, _)| n).collect();
    assert_eq!(names, straight_sim::pipeline::STAGE_NAMES.to_vec());
}
