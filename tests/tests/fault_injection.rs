//! The robustness harness end to end: seeded fault-injection
//! campaigns against the cycle-accurate cores, the hazard sanitizer's
//! clean-run and detection behaviour, the forward-progress watchdog,
//! and construction-time configuration validation.
//!
//! The campaign contract (see `straight_sim::inject`): every injected
//! fault must be **masked** (oracle-identical output), **recovered**
//! (absorbed by the machine's own speculation recovery), or
//! **detected** (a typed trap from the sanitizer, an architectural
//! check, or the watchdog) — never a silent divergence from the
//! functional emulator.

use straight_asm::ImageIsa;
use straight_compiler::StraightOptions;
use straight_isa::rng::SplitMix64;
use straight_isa::TrapKind;
use straight_sim::inject::FaultKind;
use straight_sim::pipeline::{simulate, Core, CoreError, IsaKind, MachineConfig, SimExit, SimResult};
use straight_tests::{build_ir, build_riscv, build_straight, run_interp};

const MAX: u64 = 20_000_000;

/// A branchy, memory-touching workload long enough that mid-run
/// injections land in a busy pipeline.
const WORKLOAD: &str = "
    int buf[32];
    int lcg = 7;
    int next() { lcg = lcg * 1103515245 + 12345; return (lcg >> 16) & 32767; }
    int main() {
        int s = 0;
        int i;
        for (i = 0; i < 400; i++) {
            buf[i % 32] = next();
            if (buf[i % 32] % 3 == 0) s += buf[(i + 7) % 32];
            else s = s ^ i;
        }
        print_int(s);
        return 0;
    }";

fn straight_image() -> straight_asm::Image {
    build_straight(&build_ir(WORKLOAD), &StraightOptions::default().with_max_distance(31))
}

fn riscv_image() -> straight_asm::Image {
    build_riscv(&build_ir(WORKLOAD))
}

fn completed(r: &SimResult, what: &str) -> (i32, String) {
    match r.exit {
        SimExit::Completed { code } => (code, r.stdout.clone()),
        ref other => panic!("{what} did not complete: {other:?}"),
    }
}

// -- sanitizer: clean machines pass ---------------------------------

#[test]
fn sanitizer_passes_clean_straight_machines() {
    let expected = run_interp(&build_ir(WORKLOAD));
    let image = straight_image();
    for cfg in [MachineConfig::straight_2way(), MachineConfig::straight_4way()] {
        let plain = simulate(image.clone(), cfg.clone(), MAX).unwrap();
        let cfg = cfg.with_sanitizer();
        assert!(cfg.name.ends_with("+sanitizer"));
        let r = simulate(image.clone(), cfg, MAX).unwrap();
        let (code, stdout) = completed(&r, "sanitized STRAIGHT run");
        assert_eq!(code, expected.exit_code);
        assert_eq!(stdout, expected.stdout);
        // The sanitizer is a zero-cycle retire-time checker: timing is
        // identical to the unsanitized machine.
        assert_eq!(r.stats.cycles, plain.stats.cycles);
    }
}

#[test]
fn sanitizer_passes_clean_ss_machines() {
    let expected = run_interp(&build_ir(WORKLOAD));
    let image = riscv_image();
    for cfg in [MachineConfig::ss_2way(), MachineConfig::ss_4way()] {
        let r = simulate(image.clone(), cfg.with_sanitizer(), MAX).unwrap();
        let (code, stdout) = completed(&r, "sanitized SS run");
        assert_eq!(code, expected.exit_code);
        assert_eq!(stdout, expected.stdout);
    }
}

// -- fault class 1: PRF bit flips (soft errors) ---------------------

/// Seeded campaign: flip one PRF bit mid-run under the sanitizer.
/// Every trial must end masked or detected; count both to make sure
/// the campaign actually exercises both outcomes.
fn prf_flip_campaign(image: &straight_asm::Image, cfg: &MachineConfig, seed: u64) -> (u32, u32) {
    let clean = simulate(image.clone(), cfg.clone(), MAX).unwrap();
    let (clean_code, clean_stdout) = completed(&clean, "clean run");
    let mut rng = SplitMix64::new(seed);
    let (mut masked, mut detected) = (0u32, 0u32);
    for trial in 0..24 {
        let mut core = Core::new(image.clone(), cfg.clone()).unwrap();
        let at = 100 + rng.below(clean.stats.cycles.saturating_sub(200).max(1));
        let reg = rng.below(u64::from(cfg.phys_regs)) as u16;
        let bit = rng.below(32) as u8;
        core.schedule_fault(at, FaultKind::PrfBitFlip { reg, bit });
        let r = core.run(MAX);
        match r.exit {
            SimExit::Completed { code } => {
                assert_eq!(code, clean_code, "trial {trial}: silent exit-code divergence");
                assert_eq!(r.stdout, clean_stdout, "trial {trial}: silent output divergence");
                masked += 1;
            }
            SimExit::Trap(t) => {
                detected += 1;
                assert!(t.cycle.is_some_and(|c| c >= at), "trial {trial}: trap {t} predates the fault");
            }
            SimExit::CycleLimit => panic!("trial {trial}: fault hung the core undetected"),
        }
    }
    (masked, detected)
}

#[test]
fn prf_bitflip_campaign_straight() {
    let cfg = MachineConfig::straight_2way().with_sanitizer();
    let (masked, detected) = prf_flip_campaign(&straight_image(), &cfg, 0x5eed_0001);
    println!("STRAIGHT campaign: masked={masked} detected={detected}");
    assert!(masked > 0, "campaign never masked a flip (masked={masked} detected={detected})");
    assert!(detected > 0, "campaign never detected a flip (masked={masked} detected={detected})");
}

#[test]
fn prf_bitflip_campaign_ss() {
    let cfg = MachineConfig::ss_2way().with_sanitizer();
    let (masked, detected) = prf_flip_campaign(&riscv_image(), &cfg, 0x5eed_0002);
    println!("SS campaign: masked={masked} detected={detected}");
    assert!(masked > 0, "campaign never masked a flip (masked={masked} detected={detected})");
    assert!(detected > 0, "campaign never detected a flip (masked={masked} detected={detected})");
}

#[test]
fn detected_flips_raise_sanitizer_or_architectural_traps() {
    // The detection channel must be a *typed* trap: either one of the
    // sanitizer kinds or an architectural fault the corruption caused
    // (e.g. a wild access through a flipped address register).
    let image = straight_image();
    let cfg = MachineConfig::straight_2way().with_sanitizer();
    let mut rng = SplitMix64::new(0x5eed_0003);
    let mut kinds = Vec::new();
    for _ in 0..24 {
        let mut core = Core::new(image.clone(), cfg.clone()).unwrap();
        let at = 100 + rng.below(2_000);
        let reg = rng.below(u64::from(cfg.phys_regs)) as u16;
        let bit = rng.below(32) as u8;
        core.schedule_fault(at, FaultKind::PrfBitFlip { reg, bit });
        if let SimExit::Trap(t) = core.run(MAX).exit {
            kinds.push(t.kind);
        }
    }
    assert!(!kinds.is_empty(), "no flip was detected");
    assert!(
        kinds.iter().any(|k| k.is_sanitizer()),
        "expected at least one sanitizer-kind detection, got {kinds:?}"
    );
}

// -- fault class 2: corrupted predictor state (recovered) -----------

#[test]
fn forced_mispredictions_are_recovered() {
    let image = straight_image();
    let cfg = MachineConfig::straight_4way().with_sanitizer();
    let clean = simulate(image.clone(), cfg.clone(), MAX).unwrap();
    let (clean_code, clean_stdout) = completed(&clean, "clean run");
    let mut core = Core::new(image, cfg).unwrap();
    for at in [200, 900, 1_700, 2_600, 3_400] {
        core.schedule_fault(at, FaultKind::ForceMispredict);
    }
    let r = core.run(MAX);
    assert_eq!(core_exit(&r), (clean_code, clean_stdout.as_str()), "recovery must hide the flips");
}

#[test]
fn ras_corruption_is_recovered() {
    // Garbage return addresses predict wrong return targets; indirect
    // misprediction recovery must absorb them on both ISAs.
    for (image, cfg) in [
        (straight_image(), MachineConfig::straight_2way().with_sanitizer()),
        (riscv_image(), MachineConfig::ss_2way().with_sanitizer()),
    ] {
        let clean = simulate(image.clone(), cfg.clone(), MAX).unwrap();
        let (clean_code, clean_stdout) = completed(&clean, "clean run");
        let mut core = Core::new(image, cfg).unwrap();
        core.schedule_fault(300, FaultKind::RasCorrupt { slots: 4 });
        core.schedule_fault(1_500, FaultKind::RasCorrupt { slots: 8 });
        let r = core.run_in_place(MAX);
        assert_eq!(core.faults_applied(), 2);
        assert_eq!(core_exit(&r), (clean_code, clean_stdout.as_str()));
    }
}

fn core_exit(r: &SimResult) -> (i32, &str) {
    match r.exit {
        SimExit::Completed { code } => (code, r.stdout.as_str()),
        ref other => panic!("run did not complete: {other:?}\n--- stdout ---\n{}", r.stdout),
    }
}

// -- fault class 3: lost completions (watchdog) ---------------------

#[test]
fn lost_completions_trip_the_watchdog() {
    // Dropping in-flight completions deadlocks commit: the ROB head
    // stays Issued forever. The watchdog must abort well under 10k
    // cycles with a structured diagnostic.
    let image = straight_image();
    let cfg = MachineConfig::straight_2way().with_sanitizer().with_watchdog(2_000);
    let mut core = Core::new(image, cfg).unwrap();
    // Clear in-flight ops every cycle across a window: whatever issues
    // during it never writes back.
    for at in 200..400 {
        core.schedule_fault(at, FaultKind::LoseCompletion);
    }
    let r = core.run(MAX);
    let trap = r.trap().expect("watchdog trap");
    assert!(matches!(trap.kind, TrapKind::Watchdog { stalled_cycles } if stalled_cycles > 2_000));
    assert!(r.stats.cycles < 10_000, "aborted too late: cycle {}", r.stats.cycles);
    let report = r.watchdog.expect("structured diagnostic");
    println!("watchdog report:\n{report}");
    assert!(report.stalled_cycles > 2_000);
    assert!(report.rob_len > 0, "a deadlocked ROB is non-empty");
    let text = report.to_string();
    assert!(text.contains("no commit for"), "{text}");
    assert!(text.contains("rob head"), "{text}");
    assert!(text.contains("fetch_pc"), "{text}");
}

#[test]
fn watchdog_fires_on_ss_too() {
    let image = riscv_image();
    let cfg = MachineConfig::ss_2way().with_watchdog(1_500);
    let mut core = Core::new(image, cfg).unwrap();
    for at in 200..400 {
        core.schedule_fault(at, FaultKind::LoseCompletion);
    }
    let r = core.run(MAX);
    assert!(matches!(r.exit, SimExit::Trap(t) if matches!(t.kind, TrapKind::Watchdog { .. })));
    assert!(r.stats.cycles < 10_000);
    assert!(r.watchdog.is_some());
}

// -- construction-time validation -----------------------------------

#[test]
fn core_rejects_mismatched_isa() {
    let s_image = straight_image();
    let r_image = riscv_image();
    match Core::new(s_image.clone(), MachineConfig::ss_4way()) {
        Err(CoreError::IsaMismatch { machine, image }) => {
            assert_eq!(machine, IsaKind::Ss);
            assert_eq!(image, ImageIsa::Straight);
        }
        other => panic!("expected an ISA mismatch, got {:?}", other.err()),
    }
    match Core::new(r_image, MachineConfig::straight_4way()) {
        Err(CoreError::IsaMismatch { machine, image }) => {
            assert_eq!(machine, IsaKind::Straight);
            assert_eq!(image, ImageIsa::Riscv);
            let msg = CoreError::IsaMismatch { machine, image }.to_string();
            assert!(msg.contains("RV32IM"), "{msg}");
        }
        other => panic!("expected an ISA mismatch, got {:?}", other.err()),
    }
    // simulate() surfaces the same error.
    assert!(simulate(s_image, MachineConfig::ss_2way(), 1_000).is_err());
}

#[test]
fn core_rejects_undersized_register_file() {
    let image = riscv_image();
    let cfg = MachineConfig { phys_regs: 32, ..MachineConfig::ss_2way() };
    match Core::new(image, cfg) {
        Err(CoreError::TooFewPhysRegs { phys_regs }) => assert_eq!(phys_regs, 32),
        other => panic!("expected TooFewPhysRegs, got {:?}", other.err()),
    }
}
