//! Property-style end-to-end differential testing: randomly generated
//! MinC programs must behave identically on the interpreter, the
//! RV32IM emulator, and STRAIGHT in both compilation modes at both
//! distance limits. This fuzzes the entire stack — parser, SSA
//! construction, optimizer, inliner, both back-ends, assembler,
//! linker, and emulators.
//!
//! Programs are generated with the in-repo deterministic PRNG
//! (`straight_isa::rng`), so every run covers the same corpus and a
//! failure reproduces from its seed alone.

use straight_isa::rng::SplitMix64;
use straight_tests::check_differential;

/// A random arithmetic expression over the in-scope variables
/// `a`, `b`, `c` and small constants. Division-like corner cases
/// appear through the `%` arms without dominating.
fn expr(r: &mut SplitMix64, depth: u32) -> String {
    if depth == 0 || r.chance(1, 3) {
        return match r.below(4) {
            0 => r.range_i32(-100, 99).to_string(),
            1 => "a".to_string(),
            2 => "b".to_string(),
            _ => "c".to_string(),
        };
    }
    let l = expr(r, depth - 1);
    let rhs = expr(r, depth - 1);
    let op = ["+", "-", "*", "&", "|", "^", "<", "<=", "==", "!=", ">>"][r.below(11) as usize];
    match op {
        ">>" => format!("(({l}) >> (({rhs}) & 7))"),
        "*" => format!("(({l}) * (({rhs}) % 13))"),
        _ => format!("(({l}) {op} ({rhs}))"),
    }
}

fn program(r: &mut SplitMix64) -> String {
    let e1 = expr(r, 3);
    let e2 = expr(r, 3);
    let cond = expr(r, 2);
    let iters = 1 + r.below(11);
    let branch = if r.chance(1, 2) {
        format!("if (({cond}) % 3 == 0) b = b + a; else c = c ^ i;")
    } else {
        format!("if ((a ^ i) % 2) a = a - c; else b = {e2};")
    };
    format!(
        "int helper(int a, int b, int c) {{ return {e2}; }}
         int main() {{
             int a = 3;
             int b = -7;
             int c = 11;
             int i;
             for (i = 0; i < {iters}; i++) {{
                 a = {e1};
                 {branch}
                 c = c + helper(a, b, i);
             }}
             print_int(a); print_int(b); print_int(c);
             return (a ^ b ^ c) & 255;
         }}"
    )
}

/// The whole pyramid agrees on random programs.
#[test]
fn random_programs_agree_everywhere() {
    for seed in 0..24u64 {
        let mut r = SplitMix64::new(0xd1ff_0000 + seed);
        let src = program(&mut r);
        check_differential(&src);
    }
}
