//! Property-based end-to-end differential testing: randomly generated
//! MinC programs must behave identically on the interpreter, the
//! RV32IM emulator, and STRAIGHT in both compilation modes at both
//! distance limits. This fuzzes the entire stack — parser, SSA
//! construction, optimizer, inliner, both back-ends, assembler,
//! linker, and emulators.

use proptest::prelude::*;
use straight_tests::check_differential;

/// A random arithmetic expression over the in-scope variables
/// `a`, `b`, `c` and small constants. Division uses an odd-offset
/// denominator so RV32-defined div-by-zero corner cases still appear
/// occasionally (via the `| 1` arm) without dominating.
fn expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (-100i32..100).prop_map(|k| k.to_string()),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(str::to_string),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        (inner.clone(), prop_oneof![
            Just("+"), Just("-"), Just("*"), Just("&"), Just("|"), Just("^"),
            Just("<"), Just("<="), Just("=="), Just("!="), Just(">>"),
        ], inner)
            .prop_map(|(l, op, r)| match op {
                ">>" => format!("(({l}) >> (({r}) & 7))"),
                "*" => format!("(({l}) * (({r}) % 13))"),
                _ => format!("(({l}) {op} ({r}))"),
            })
    })
    .boxed()
}

fn program() -> impl Strategy<Value = String> {
    (expr(3), expr(3), expr(2), 1u32..12, any::<bool>()).prop_map(|(e1, e2, cond, iters, flip)| {
        let branch = if flip {
            format!("if (({cond}) % 3 == 0) b = b + a; else c = c ^ i;")
        } else {
            format!("if ((a ^ i) % 2) a = a - c; else b = {e2};")
        };
        format!(
            "int helper(int a, int b, int c) {{ return {e2}; }}
             int main() {{
                 int a = 3;
                 int b = -7;
                 int c = 11;
                 int i;
                 for (i = 0; i < {iters}; i++) {{
                     a = {e1};
                     {branch}
                     c = c + helper(a, b, i);
                 }}
                 print_int(a); print_int(b); print_int(c);
                 return (a ^ b ^ c) & 255;
             }}"
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// The whole pyramid agrees on random programs.
    #[test]
    fn random_programs_agree_everywhere(src in program()) {
        check_differential(&src);
    }
}
