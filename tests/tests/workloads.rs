//! The benchmark workloads must be valid MinC and behave identically
//! on the interpreter, both emulated ISAs (all compilation modes),
//! and the cycle-accurate machines.

use straight_compiler::StraightOptions;
use straight_sim::pipeline::{simulate, MachineConfig};
use straight_tests::{build_ir, build_riscv, build_straight, check_differential, run_interp};
use straight_workloads::{coremark, dhrystone, kernels};

#[test]
fn dhrystone_differential() {
    let b = check_differential(&dhrystone(5));
    assert!(!b.stdout.is_empty());
    assert_eq!(b.exit_code, 0);
}

#[test]
fn coremark_differential() {
    let b = check_differential(&coremark(2));
    assert!(!b.stdout.is_empty());
    assert_eq!(b.exit_code, 0);
}

#[test]
fn kernels_differential() {
    let fib = check_differential(&kernels::fibonacci(30));
    assert_eq!(fib.stdout, "832040\n");
    let sieve = check_differential(&kernels::sieve(1000));
    assert_eq!(sieve.stdout, "168\n");
    check_differential(&kernels::fibonacci_recursive(10));
    check_differential(&kernels::quicksort(100));
    check_differential(&kernels::crc32(256));
    check_differential(&kernels::matmul());
    check_differential(&kernels::string_ops());
}

#[test]
fn dhrystone_on_cycle_accurate_machines() {
    let module = build_ir(&dhrystone(3));
    let expected = run_interp(&module);
    let rv = simulate(build_riscv(&module), MachineConfig::ss_4way(), 50_000_000).unwrap();
    assert_eq!(rv.stdout, expected.stdout, "SS-4way");
    let st = simulate(
        build_straight(&module, &StraightOptions::default().with_max_distance(31)),
        MachineConfig::straight_4way(),
        50_000_000,
    )
    .unwrap();
    assert_eq!(st.stdout, expected.stdout, "STRAIGHT-4way");
}

#[test]
fn coremark_on_cycle_accurate_machines() {
    let module = build_ir(&coremark(1));
    let expected = run_interp(&module);
    let rv = simulate(build_riscv(&module), MachineConfig::ss_2way(), 50_000_000).unwrap();
    assert_eq!(rv.stdout, expected.stdout, "SS-2way");
    let st = simulate(
        build_straight(&module, &StraightOptions::default().with_max_distance(31)),
        MachineConfig::straight_2way(),
        50_000_000,
    )
    .unwrap();
    assert_eq!(st.stdout, expected.stdout, "STRAIGHT-2way");
}

#[test]
fn re_plus_reduces_rmov_count_on_coremark() {
    // Figure 15's central claim: RE+ drastically cuts the RMOVs the
    // basic algorithm inserts.
    let module = build_ir(&coremark(1));
    let raw = straight_tests::run_straight(build_straight(&module, &StraightOptions::raw()));
    let re = straight_tests::run_straight(build_straight(&module, &StraightOptions::default()));
    let raw_rmov = raw.stats.kinds().get("rmov").copied().unwrap_or(0);
    let re_rmov = re.stats.kinds().get("rmov").copied().unwrap_or(0);
    assert!(
        (re_rmov as f64) < 0.6 * raw_rmov as f64,
        "RE+ should cut RMOVs: RAW={raw_rmov} RE+={re_rmov}"
    );
    assert!(re.stats.retired < raw.stats.retired);
}

#[test]
fn coremark_has_more_live_pressure_than_dhrystone() {
    // The paper attributes CoreMark's larger RAW overhead to more
    // live values across merges; check the RMOV overhead ordering.
    let over = |src: &str| -> f64 {
        let module = build_ir(src);
        let raw = straight_tests::run_straight(build_straight(&module, &StraightOptions::raw()));
        let re = straight_tests::run_straight(build_straight(&module, &StraightOptions::default()));
        raw.stats.retired as f64 / re.stats.retired as f64
    };
    let d = over(&dhrystone(2));
    let c = over(&coremark(1));
    assert!(c > 1.05, "coremark RAW overhead should be visible: {c}");
    assert!(d > 0.9, "sanity: {d}");
}
