//! Tests of the machine-readable experiment records produced by the
//! `straight-lab` runner: JSON round-tripping, run-to-run determinism,
//! and the compatibility of the re-rendered reports.

use std::collections::BTreeMap;

use straight_compiler::StraightOptions;
use straight_core::experiment::{
    CellRecord, ExperimentId, ExperimentResult, RunParams, SCHEMA_VERSION,
};
use straight_core::lab::{validate_file, LabRun, LabSession};
use straight_json::{FromJson, Json, ToJson};
use straight_sim::pipeline::{Core, MachineConfig, SimStats};
use straight_tests::{build_ir, build_riscv, build_straight};
use straight_workloads::dhrystone;

/// Tiny parameters so pipeline cells finish quickly in debug builds.
fn tiny_params() -> RunParams {
    RunParams { dhry_iters: 5, cm_iters: 1, ..RunParams::default() }
}

fn ids(names: &[&str]) -> Vec<ExperimentId> {
    names.iter().map(|s| s.parse().expect("test uses valid experiment names")).collect()
}

/// A fresh session (so tests stay independent) running `names` with
/// tiny parameters on `jobs` workers.
fn run_fresh(names: &[&str], jobs: usize) -> Vec<LabRun> {
    let session = LabSession::builder().jobs(jobs).build().unwrap();
    session.run(&ids(names), tiny_params()).unwrap()
}

/// A synthetic record exercising every optional field at once (real
/// cells set disjoint subsets).
fn synthetic_result() -> ExperimentResult {
    let mut stats = SimStats { cycles: 1000, ..SimStats::default() };
    for _ in 0..150 {
        stats.bump_kind("alu");
    }
    stats.bump_kind("jump+branch");
    stats.events.rmt_reads = 42;
    stats.mem.l1d = (100, 7);
    ExperimentResult {
        schema_version: SCHEMA_VERSION,
        experiment: "synthetic".to_string(),
        title: "Synthetic experiment".to_string(),
        paper_ref: "none".to_string(),
        git_rev: "deadbeef".to_string(),
        params: tiny_params(),
        wall_ms: 12.5,
        cells: vec![CellRecord {
            id: "synthetic/g/l".to_string(),
            experiment: "synthetic".to_string(),
            group: "g".to_string(),
            label: "l \"quoted\"\n".to_string(),
            workload: Some("Dhrystone".to_string()),
            target: Some("RV32IM".to_string()),
            machine: Some("SS-2way".to_string()),
            config_fingerprint: "0123456789abcdef".to_string(),
            param: Some(31),
            cycles: 1000,
            retired: 151,
            ipc: 0.151,
            stats: Some(stats),
            kinds: Some(BTreeMap::from([("alu".to_string(), 150u64)])),
            distances: Some(vec![(1, 0.5), (1024, 1.0)]),
            max_distance_used: Some(900),
            stdout_digest: Some("ffffffffffffffff".to_string()),
            wall_ms: 3.25,
            sim_wall_ms: Some(2.5),
            ksim_cycles_per_sec: Some(400.0),
        }],
    }
}

#[test]
fn synthetic_record_roundtrips_through_json() {
    let original = synthetic_result();
    let text = original.to_json().render_pretty();
    let reparsed = ExperimentResult::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(reparsed, original);
    // And a second serialization is byte-identical (deterministic key
    // order).
    assert_eq!(reparsed.to_json().render_pretty(), text);
}

#[test]
fn real_records_roundtrip_through_json() {
    // fig15/fig16 run on the functional emulators, so they are fast
    // even in debug builds and cover the emulator cell kinds; table1
    // covers config cells.
    let runs = run_fresh(&["fig15", "fig16", "table1"], 4);
    assert_eq!(runs.len(), 3);
    for run in runs {
        let text = run.result.to_json().render_pretty();
        let reparsed = ExperimentResult::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(reparsed, run.result);
    }
}

#[test]
fn same_cell_twice_is_identical_modulo_wall_time() {
    let a = run_fresh(&["fig15"], 4).remove(0);
    let b = run_fresh(&["fig15"], 4).remove(0);
    // Wall times differ between runs; everything else must not.
    assert_eq!(a.result.normalized(), b.result.normalized());
    assert_eq!(
        a.result.normalized().to_json().render_pretty(),
        b.result.normalized().to_json().render_pretty()
    );
    // The rendered report carries no timing, so it is identical as-is.
    assert_eq!(a.rendered, b.rendered);
}

#[test]
fn parallel_and_serial_runs_agree() {
    let a = run_fresh(&["fig16"], 1).remove(0);
    let b = run_fresh(&["fig16"], 8).remove(0);
    assert_eq!(a.result.normalized(), b.result.normalized());
}

/// Regression test for cross-run predictor state leakage: pipeline
/// cells (which carry branch-predictor and store-set state inside the
/// simulated core) must produce identical records whether they run
/// serially, in parallel, or in a different experiment order. A
/// predictor whose state leaks across simulations (the old
/// `thread_local!` store-set decay counter) breaks exactly this.
#[test]
fn pipeline_records_do_not_depend_on_schedule_or_order() {
    // fig17 contains pipeline (cycle-accurate) Dhrystone cells; fig15
    // rides along so experiment order can be permuted.
    let a = run_fresh(&["fig15", "fig17"], 1);
    let b = run_fresh(&["fig15", "fig17"], 8);
    let c = run_fresh(&["fig17", "fig15"], 1);

    // The grid actually exercised the cycle-accurate pipeline.
    assert!(
        a.iter().flat_map(|r| &r.result.cells).any(|cell| cell.stats.is_some()),
        "expected at least one pipeline cell in fig17"
    );

    let by_name = |runs: &[LabRun], name: &str| {
        runs.iter()
            .map(|r| r.result.normalized())
            .find(|r| r.experiment == name)
            .expect("experiment present")
    };
    for name in ["fig15", "fig17"] {
        let serial_r = by_name(&a, name);
        assert_eq!(serial_r, by_name(&b, name), "{name}: jobs=1 vs jobs=8 diverged");
        assert_eq!(serial_r, by_name(&c, name), "{name}: experiment order changed the records");
    }
}

/// Pipeline cells must report the profiler's throughput fields;
/// non-pipeline cells must not.
#[test]
fn pipeline_records_carry_throughput_profile() {
    let runs = run_fresh(&["fig17"], 4);
    let mut pipeline_cells = 0;
    for cell in runs.iter().flat_map(|r| &r.result.cells) {
        if cell.stats.is_some() {
            pipeline_cells += 1;
            let sim_ms = cell.sim_wall_ms.expect("pipeline cell has sim_wall_ms");
            let kcps = cell.ksim_cycles_per_sec.expect("pipeline cell has throughput");
            assert!(sim_ms > 0.0, "sim_wall_ms must be positive, got {sim_ms}");
            assert!(kcps > 0.0, "ksim_cycles_per_sec must be positive, got {kcps}");
            let expected = cell.cycles as f64 / sim_ms;
            assert!((kcps - expected).abs() < 1e-9 * expected.max(1.0));
        } else {
            assert_eq!(cell.sim_wall_ms, None);
            assert_eq!(cell.ksim_cycles_per_sec, None);
        }
    }
    assert!(pipeline_cells > 0, "fig17 should contain pipeline cells");
    // normalized() strips the volatile profiling fields.
    for run in &runs {
        for cell in &run.result.normalized().cells {
            assert_eq!(cell.sim_wall_ms, None);
            assert_eq!(cell.ksim_cycles_per_sec, None);
        }
    }
}

#[test]
fn written_files_validate_and_re_render() {
    let dir = std::env::temp_dir().join(format!("straight_lab_test_{}", std::process::id()));
    let session =
        LabSession::builder().jobs(4).out_dir(Some(dir.clone())).build().unwrap();
    let run = session.run(&ids(&["fig15"]), tiny_params()).unwrap().remove(0);
    let path = run.path.clone().expect("out_dir set, so a path is returned");
    assert!(path.ends_with("BENCH_fig15.json"));

    // The file parses, schema-checks, and regenerates the exact text
    // report.
    let reloaded = validate_file(&path).unwrap();
    assert_eq!(reloaded, run.result);
    let spec = straight_core::experiment::find("fig15").unwrap();
    assert_eq!(spec.render(&reloaded).unwrap(), run.rendered);

    // Corrupted files are rejected, not misread.
    std::fs::write(&path, "{\"schema_version\": 999}").unwrap();
    assert!(validate_file(&path).is_err());
    std::fs::write(&path, "not json at all").unwrap();
    assert!(validate_file(&path).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The data-oriented core's slabs/wheel/register files are reused
/// across runs through [`Core::reset`]: a replay after an in-process
/// reset must serialize to exactly the same record bytes as the fresh
/// run (the bit-identity contract DESIGN.md's "Data-oriented core"
/// section documents).
#[test]
fn core_reset_replay_is_byte_identical() {
    let module = build_ir(&dhrystone(5));
    let cells: [(straight_asm::Image, MachineConfig); 2] = [
        (build_straight(&module, &StraightOptions::default()), MachineConfig::straight_4way()),
        (build_riscv(&module), MachineConfig::ss_4way()),
    ];
    for (image, cfg) in cells {
        let name = cfg.name.clone();
        let mut core = Core::new(image, cfg).expect("core builds");
        let fresh = core.run_in_place(50_000_000);
        assert_eq!(fresh.exit_code, Some(0), "{name}: fresh run completes");
        core.reset();
        let replay = core.run_in_place(50_000_000);
        let a = fresh.stats.to_json().render_pretty();
        let b = replay.stats.to_json().render_pretty();
        assert_eq!(a, b, "{name}: reset replay diverged from the fresh run");
        assert_eq!(fresh.stdout, replay.stdout, "{name}: stdout diverged");
        assert_eq!(fresh.exit_code, replay.exit_code, "{name}: exit code diverged");
    }
}

/// Regression test for the lazily-built sanitizer oracle: a default
/// (unsanitized) run must never clone the image into a shadow
/// emulator, while a sanitized run builds it at first retirement.
#[test]
fn shadow_emulator_is_only_built_when_sanitizing() {
    let module = build_ir(&dhrystone(1));
    let image = build_straight(&module, &StraightOptions::default());

    let mut core =
        Core::new(image.clone(), MachineConfig::straight_4way()).expect("core builds");
    let r = core.run_in_place(50_000_000);
    assert_eq!(r.exit_code, Some(0));
    assert!(
        !core.shadow_allocated(),
        "a default run must not allocate the sanitizer's shadow emulator"
    );

    let mut core =
        Core::new(image, MachineConfig::straight_4way().with_sanitizer()).expect("core builds");
    let r = core.run_in_place(50_000_000);
    assert_eq!(r.exit_code, Some(0));
    assert!(core.shadow_allocated(), "a sanitized run builds the shadow oracle");
}

#[test]
fn records_carry_provenance() {
    let runs = run_fresh(&["table1"], 4);
    let result = &runs[0].result;
    assert_eq!(result.schema_version, SCHEMA_VERSION);
    assert!(!result.git_rev.is_empty());
    assert_eq!(result.params.dhry_iters, 5);
    for cell in &result.cells {
        assert_eq!(cell.config_fingerprint.len(), 16);
        assert!(cell.config_fingerprint.chars().all(|c| c.is_ascii_hexdigit()));
        assert!(cell.id.starts_with("table1/"));
    }
}

#[test]
fn perf_records_detect_divergence_at_render_time() {
    // Tamper with a stored record: if one variant's stdout digest
    // differs, rendering must fail with a divergence error rather than
    // comparing unlike programs.
    let runs = run_fresh(&["fig15"], 4);
    let mut result = runs[0].result.clone();
    // fig15 is a Mix figure (no divergence check); re-shape the cells
    // into a perf experiment to exercise the perf assembly path.
    let spec = straight_core::experiment::find("fig11").unwrap();
    for (i, cell) in result.cells.iter_mut().enumerate() {
        cell.group = "Coremark".to_string();
        cell.stdout_digest = Some(format!("{i:016x}"));
    }
    let err = spec.render(&result).unwrap_err();
    assert!(err.to_string().contains("diverged"), "got: {err}");
}
