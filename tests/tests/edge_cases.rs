//! Edge cases aimed at the compiler's distance machinery: programs
//! engineered to sit near the limits of the ISA's distance bound, the
//! calling convention, and the frame shuffles.

use straight_compiler::StraightOptions;
use straight_sim::emu::ExecBackend;
use straight_sim::pipeline::{simulate, MachineConfig};
use straight_tests::{build_ir, build_riscv, build_straight, check_differential, run_interp, run_straight};

#[test]
fn long_straightline_block_forces_relays() {
    // A single basic block much longer than max distance 31: the
    // first value is used at the very end, so bounding must relay it.
    // 14 values stay live across a block far longer than the bound;
    // more than ~20 would (correctly) exceed what distance 31 can hold.
    let mut body = String::from("int first = 17;\n");
    for i in 0..10 {
        body.push_str(&format!("int t{i} = {i} * 3 + {};\n", i % 7));
    }
    body.push_str("int pad = 0;\nint k;\nfor (k = 0; k < 1; k++) pad += k;\n");
    body.push_str("int acc = first + pad;\n");
    for i in 0..10 {
        body.push_str(&format!("acc = acc + t{i};\n"));
    }
    let src = format!("int main() {{ {body} print_int(acc); return 0; }}");
    check_differential(&src);
}

#[test]
fn deeply_nested_control_flow() {
    check_differential(
        "int main() {
             int s = 0;
             int a;
             int b;
             int c;
             for (a = 0; a < 4; a++)
                 for (b = 0; b < 4; b++)
                     for (c = 0; c < 4; c++) {
                         if (a == b) { if (b == c) s += 9; else s += 1; }
                         else if (a < b) { while (s % 7 != 0) s++; }
                         else s -= c;
                     }
             print_int(s);
             return 0;
         }",
    );
}

#[test]
fn chain_of_eight_calls_deep() {
    // Return-address handling and spilling through a deep, non-leaf
    // call chain (too big to inline end-to-end).
    let mut src = String::new();
    src.push_str("int f0(int x) { int arr[20]; int i; for (i = 0; i < 20; i++) arr[i] = x + i; return arr[x % 20] + 1; }\n");
    for k in 1..8 {
        src.push_str(&format!(
            "int f{k}(int x) {{ int keep = x * {k}; int r = f{}(x + {k}); return r + keep; }}\n",
            k - 1
        ));
    }
    src.push_str("int main() { print_int(f7(3)); return 0; }");
    check_differential(&src);
}

#[test]
fn arguments_survive_interleaved_calls() {
    check_differential(
        "int id(int x) { return x; }
         int combine(int a, int b, int c, int d) {
             return id(a) * 1000 + id(b) * 100 + id(c) * 10 + id(d);
         }
         int main() { print_int(combine(1, 2, 3, 4)); return 0; }",
    );
}

#[test]
fn loop_with_wide_live_set_at_distance_31() {
    // Twelve accumulators live around the loop back edge: the header
    // frame is wide but must stay within the 31-distance budget.
    let mut decls = String::new();
    let mut updates = String::new();
    let mut sum = String::from("0");
    for i in 0..8 {
        decls.push_str(&format!("int v{i} = {i};\n"));
        updates.push_str(&format!("v{i} = v{i} + i + {i};\n"));
        sum = format!("{sum} + v{i}");
    }
    let src = format!(
        "int main() {{
             {decls}
             int i;
             for (i = 0; i < 25; i++) {{ {updates} }}
             print_int({sum});
             return 0;
         }}"
    );
    check_differential(&src);
}

#[test]
fn raw_mode_relays_retaddr_through_loops() {
    // RAW keeps the return address in the frame of every merge
    // (Figure 10a); make sure a function with a long loop still
    // returns correctly under the tight bound.
    let src = "int work(int n) {
                   int s = 0;
                   int i;
                   for (i = 0; i < n; i++) s = s * 3 + i;
                   return s;
               }
               int main() { print_int(work(40)); return 0; }";
    let module = build_ir(src);
    let expected = run_interp(&module);
    let raw = run_straight(build_straight(&module, &StraightOptions::raw().with_max_distance(31)));
    assert_eq!(raw.stdout, expected.stdout);
    assert_eq!(raw.exit_code(), Some(expected.exit_code));
}

#[test]
fn simulator_handles_tiny_iq_pressure() {
    // The 2-way model's 16-entry scheduler under a dependence chain
    // that cannot issue for a long time (division chains).
    let src = "int main() {
                   int d = 1000000;
                   int i;
                   for (i = 1; i < 40; i++) d = d / (i % 5 + 1) + i;
                   print_int(d);
                   return 0;
               }";
    let module = build_ir(src);
    let expected = run_interp(&module);
    let r = simulate(build_riscv(&module), MachineConfig::ss_2way(), 10_000_000).unwrap();
    assert_eq!(r.stdout, expected.stdout);
    let s = simulate(
        build_straight(&module, &StraightOptions::default().with_max_distance(31)),
        MachineConfig::straight_2way(),
        10_000_000,
    )
    .unwrap();
    assert_eq!(s.stdout, expected.stdout);
}

#[test]
fn frame_too_large_reported_not_panicked() {
    // More live values at a merge than distance 8 can express must be
    // a clean error.
    let mut decls = String::new();
    let mut sum = String::from("0");
    for i in 0..24usize {
        decls.push_str(&format!("int w{i} = {i} * 3;\n"));
        sum = format!("{sum} + w{i}");
    }
    let src = format!(
        "int helper(int x) {{ return x + 1; }}
         int main() {{
             {decls}
             int i;
             for (i = 0; i < 5; i++) {{ if (i % 2) {{ }} }}
             print_int({sum} + helper(i));
             return 0;
         }}"
    );
    let module = build_ir(&src);
    match straight_compiler::compile_straight(&module, &StraightOptions::raw().with_max_distance(8)) {
        Ok(prog) => {
            // The optimizer may have shrunk the live set enough; then
            // the program must still be correct.
            let image = straight_asm::link_straight(&prog).unwrap();
            let expected = run_interp(&module);
            let r = straight_sim::emu::StraightEmu::new(image).run(10_000_000);
            assert_eq!(r.stdout, expected.stdout);
        }
        Err(e) => {
            let msg = e.to_string();
            assert!(msg.contains("exceed") || msg.contains("distance"), "unexpected error: {msg}");
        }
    }
}

#[test]
fn globals_initializers_and_negative_values() {
    check_differential(
        "int big = 2147483647;
         int neg = -2147483647;
         byte small = 200;
         int main() {
             print_int(big);
             print_int(neg - 1);
             print_int(small + 100);
             big = big + 1;
             print_int(big);
             return 0;
         }",
    );
}
