//! Fault-path differential tests: a program that faults must produce
//! the *same typed trap* on the functional emulator and on the
//! cycle-accurate out-of-order core — same [`TrapKind`] (payload
//! included), same faulting PC, and, because both report the retired
//! instruction count as the index, the same dynamic instruction index.
//! This pins down trap *precision*: whatever speculation the core was
//! doing, the architectural fault it reports is the one the in-order
//! reference sees.

use straight_asm::{link_riscv, link_straight, parse_straight_asm, Image, RvFunc, RvItem, RvProgram};
use straight_isa::{AluImmOp, Trap, TrapKind};
use straight_riscv::{Reg, RvInst};
use straight_sim::emu::{EmuExit, ExecBackend, RiscvEmu, StraightEmu};
use straight_sim::pipeline::{simulate, MachineConfig, SimExit};

const MAX: u64 = 1_000_000;

fn straight_image(src: &str) -> Image {
    let prog = parse_straight_asm(src).expect("assembles");
    link_straight(&prog).expect("links")
}

fn riscv_image(items: Vec<RvInst>) -> Image {
    let prog = RvProgram {
        funcs: vec![RvFunc {
            name: "main".into(),
            items: items.into_iter().map(RvItem::plain).collect(),
            labels: vec![],
        }],
        data: vec![],
    };
    link_riscv(&prog).expect("links")
}

fn emu_trap(image: &Image) -> Trap {
    let exit = match image.isa {
        straight_asm::ImageIsa::Straight => StraightEmu::new(image.clone()).run(MAX).exit,
        straight_asm::ImageIsa::Riscv => RiscvEmu::new(image.clone()).run(MAX).exit,
    };
    match exit {
        EmuExit::Trap(t) => t,
        other => panic!("emulator did not trap: {other:?}"),
    }
}

fn core_trap(image: &Image, cfg: MachineConfig) -> Trap {
    let name = cfg.name.clone();
    let r = simulate(image.clone(), cfg, MAX).unwrap();
    match r.exit {
        SimExit::Trap(t) => t,
        other => panic!("{name} did not trap: {other:?}\n--- stdout ---\n{}", r.stdout),
    }
}

/// Both cycle-accurate models of an ISA must report the emulator's
/// exact trap: same kind (with payload), same PC, same dynamic index.
fn check_trap_matches(image: &Image, configs: [MachineConfig; 2]) -> Trap {
    let reference = emu_trap(image);
    for cfg in configs {
        let name = cfg.name.clone();
        let t = core_trap(image, cfg);
        assert!(
            reference.same_event(&t),
            "{name}: core trap `{t}` is not the emulator's `{reference}`"
        );
        assert_eq!(t.index, reference.index, "{name}: dynamic instruction index");
        assert!(t.cycle.is_some(), "{name}: core traps carry a cycle");
    }
    reference
}

fn straight_cfgs() -> [MachineConfig; 2] {
    [MachineConfig::straight_2way(), MachineConfig::straight_4way()]
}

fn ss_cfgs() -> [MachineConfig; 2] {
    [MachineConfig::ss_2way(), MachineConfig::ss_4way()]
}

// -- STRAIGHT -------------------------------------------------------

#[test]
fn straight_misaligned_load_same_trap() {
    let image = straight_image(
        ".text
         func main:
            ADDi [0] 3
            LD [1] 0
            HALT",
    );
    let t = check_trap_matches(&image, straight_cfgs());
    assert!(matches!(t.kind, TrapKind::MisalignedLoad { addr: 3, .. }), "{t}");
}

#[test]
fn straight_wild_store_same_trap() {
    // LUI 64 produces 0x40_0000 = MEM_SIZE: one past the last byte.
    let image = straight_image(
        ".text
         func main:
            LUI 64
            ADDi [0] 7
            ST [1] [2]
            HALT",
    );
    let t = check_trap_matches(&image, straight_cfgs());
    assert!(matches!(t.kind, TrapKind::WildStore { addr: 0x0040_0000, .. }), "{t}");
}

#[test]
fn straight_illegal_instruction_same_trap() {
    let mut image = straight_image(
        ".text
         func main:
            ADDi [0] 1
            NOP
            HALT",
    );
    // Overwrite the NOP with an undecodable word.
    let bad = 0xffff_ffffu32;
    assert!(straight_isa::decode(bad).is_err(), "test needs an undecodable word");
    let main = image.symbol("main").unwrap();
    let idx = ((main + 4 - image.code_base) / 4) as usize;
    image.code[idx] = bad;
    let t = check_trap_matches(&image, straight_cfgs());
    assert_eq!(t.kind, TrapKind::IllegalInstruction { word: bad });
    assert_eq!(t.pc, main + 4);
}

#[test]
fn straight_distance_out_of_range_same_trap() {
    // Only the `_start` JAL and the ADDi have executed when the ADD
    // asks for distance 5: the producer never existed. The emulator
    // checks at the register read, the core at the RP adders — the
    // reported trap must be identical, payload included.
    let image = straight_image(
        ".text
         func main:
            ADDi [0] 1
            ADD [1] [5]
            HALT",
    );
    let t = check_trap_matches(&image, straight_cfgs());
    assert_eq!(t.kind, TrapKind::DistanceOutOfRange { dist: 5, executed: 2 });
}

#[test]
fn straight_fetch_fault_same_trap() {
    // Jump through a computed target far outside the code segment.
    let image = straight_image(
        ".text
         func main:
            LUI 1
            JR [1]",
    );
    let t = check_trap_matches(&image, straight_cfgs());
    assert_eq!(t.kind, TrapKind::FetchFault);
    assert_eq!(t.pc, 0x1_0000);
}

// -- RV32IM ---------------------------------------------------------

#[test]
fn riscv_misaligned_load_same_trap() {
    let image = riscv_image(vec![
        RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::T0, rs1: Reg::ZERO, imm: 3 },
        RvInst::Load { width: straight_isa::MemWidth::W, rd: Reg::T1, rs1: Reg::T0, offset: 0 },
        RvInst::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 },
    ]);
    let t = check_trap_matches(&image, ss_cfgs());
    assert!(matches!(t.kind, TrapKind::MisalignedLoad { addr: 3, .. }), "{t}");
}

#[test]
fn riscv_wild_store_same_trap() {
    let image = riscv_image(vec![
        RvInst::Lui { rd: Reg::T0, imm: 0x0040_0000 },
        RvInst::Store { width: straight_isa::MemWidth::W, rs2: Reg::T0, rs1: Reg::T0, offset: 0 },
        RvInst::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 },
    ]);
    let t = check_trap_matches(&image, ss_cfgs());
    assert!(matches!(t.kind, TrapKind::WildStore { addr: 0x0040_0000, .. }), "{t}");
}

#[test]
fn riscv_illegal_instruction_same_trap() {
    let mut image = riscv_image(vec![
        RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::T0, rs1: Reg::ZERO, imm: 1 },
        RvInst::OpImm { op: AluImmOp::Addi, rd: Reg::T0, rs1: Reg::T0, imm: 1 },
        RvInst::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 },
    ]);
    let bad = 0x0000_0000u32;
    assert!(straight_riscv::decode(bad).is_err(), "test needs an undecodable word");
    let main = image.symbol("main").unwrap();
    let idx = ((main + 4 - image.code_base) / 4) as usize;
    image.code[idx] = bad;
    let t = check_trap_matches(&image, ss_cfgs());
    assert_eq!(t.kind, TrapKind::IllegalInstruction { word: bad });
    assert_eq!(t.pc, main + 4);
}

#[test]
fn riscv_wild_jump_fetch_faults_same_trap() {
    let image = riscv_image(vec![
        RvInst::Lui { rd: Reg::T0, imm: 0x0001_0000 },
        RvInst::Jalr { rd: Reg::ZERO, rs1: Reg::T0, offset: 0 },
    ]);
    let t = check_trap_matches(&image, ss_cfgs());
    assert_eq!(t.kind, TrapKind::FetchFault);
    assert_eq!(t.pc, 0x1_0000);
}

// -- resource limits ------------------------------------------------

#[test]
fn spin_loop_reports_limit_on_both_models() {
    // An infinite loop is not a trap: the emulator reports its step
    // limit, the core its cycle limit — and the core's watchdog must
    // NOT fire, because commit keeps making progress.
    let image = straight_image(
        ".text
         func main:
         spin:
            J spin",
    );
    let r = StraightEmu::new(image.clone()).run(10_000);
    assert_eq!(r.exit, EmuExit::StepLimit);
    let s = simulate(image, MachineConfig::straight_2way(), 20_000).unwrap();
    assert_eq!(s.exit, SimExit::CycleLimit);
    assert!(s.watchdog.is_none(), "watchdog must not fire while commit progresses");
    assert!(s.stats.retired > 1_000);
}

#[test]
fn riscv_spin_loop_reports_limit_on_both_models() {
    let image = riscv_image(vec![RvInst::Jal { rd: Reg::ZERO, offset: 0 }]);
    let r = RiscvEmu::new(image.clone()).run(10_000);
    assert_eq!(r.exit, EmuExit::StepLimit);
    let s = simulate(image, MachineConfig::ss_2way(), 20_000).unwrap();
    assert_eq!(s.exit, SimExit::CycleLimit);
    assert!(s.watchdog.is_none());
}
