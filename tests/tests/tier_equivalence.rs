//! Seeded differential suite for the two execution tiers behind
//! `ExecBackend`: on randomly generated MinC programs, the fast
//! (decoded-trace) tier must be observably identical to the reference
//! interpreter tier — same `EmuExit`, same retirement statistics, same
//! stdout, and a byte-identical final architectural checkpoint — for
//! both ISAs. Each program also exercises lockstep mode (which traps
//! on any divergence) and a checkpoint round-trip at a random mid-run
//! snapshot point, resumed on *both* tiers.
//!
//! Programs come from the in-repo deterministic PRNG
//! (`straight_isa::rng`), so every run covers the same corpus and a
//! failure reproduces from its seed alone.

use straight_compiler::StraightOptions;
use straight_isa::rng::SplitMix64;
use straight_sim::emu::{EmuExit, ExecBackend, RiscvEmu, StraightEmu, TierConfig};
use straight_tests::{build_ir, build_riscv, build_straight};

/// Programs per ISA.
const PROGRAMS: u64 = 100;
/// Generous absolute step budget; every generated program terminates
/// far below this.
const BUDGET: u64 = 50_000_000;

/// A random arithmetic expression over the in-scope variables
/// `a`, `b`, `c` and small constants (same shape as the end-to-end
/// property suite, here aimed at tier equivalence).
fn expr(r: &mut SplitMix64, depth: u32) -> String {
    if depth == 0 || r.chance(1, 3) {
        return match r.below(4) {
            0 => r.range_i32(-100, 99).to_string(),
            1 => "a".to_string(),
            2 => "b".to_string(),
            _ => "c".to_string(),
        };
    }
    let l = expr(r, depth - 1);
    let rhs = expr(r, depth - 1);
    let op = ["+", "-", "*", "/", "%", "&", "|", "^", "<", ">=", "==", ">>", "<<"]
        [r.below(13) as usize];
    match op {
        ">>" | "<<" => format!("(({l}) {op} (({rhs}) & 7))"),
        "*" => format!("(({l}) * (({rhs}) % 13))"),
        "/" | "%" => format!("(({l}) {op} ((({rhs}) & 15) + 1))"),
        _ => format!("(({l}) {op} ({rhs}))"),
    }
}

fn program(r: &mut SplitMix64) -> String {
    let e1 = expr(r, 3);
    let e2 = expr(r, 3);
    let cond = expr(r, 2);
    let iters = 2 + r.below(14);
    let branch = if r.chance(1, 2) {
        format!("if (({cond}) % 3 == 0) b = b + a; else c = c ^ i;")
    } else {
        format!("if ((a ^ i) % 2) a = a - c; else b = {e2};")
    };
    format!(
        "int helper(int a, int b, int c) {{ return {e2}; }}
         int main() {{
             int a = 5;
             int b = -9;
             int c = 13;
             int i;
             for (i = 0; i < {iters}; i++) {{
                 a = {e1};
                 {branch}
                 c = c + helper(a, b, i);
             }}
             print_int(a); print_int(b); print_int(c);
             return (a ^ b ^ c) & 255;
         }}"
    )
}

/// Runs one program on both tiers of one backend and asserts complete
/// observable equivalence, then round-trips a checkpoint taken at a
/// random mid-run point and resumes it on each tier.
fn check_tiers<E: ExecBackend>(what: &str, seed: u64, mut fresh: impl FnMut() -> E, r: &mut SplitMix64) {
    let mut interp = fresh();
    let interp_exit = interp.run_with(BUDGET, TierConfig::interp());
    assert!(
        matches!(interp_exit, EmuExit::Done { .. }),
        "{what} seed {seed}: interpreter did not complete: {interp_exit:?}"
    );
    let interp_cp = interp.checkpoint();

    let mut fast = fresh();
    let fast_exit = fast.run_with(BUDGET, TierConfig::fast());
    assert_eq!(fast_exit, interp_exit, "{what} seed {seed}: exit diverged");
    assert_eq!(fast.stats(), interp.stats(), "{what} seed {seed}: stats diverged");
    assert_eq!(fast.executed(), interp.executed(), "{what} seed {seed}: count diverged");
    assert_eq!(fast.stdout(), interp.stdout(), "{what} seed {seed}: stdout diverged");
    let fast_cp = fast.checkpoint();
    assert_eq!(fast_cp, interp_cp, "{what} seed {seed}: final state diverged");
    assert_eq!(
        fast_cp.to_bytes(),
        interp_cp.to_bytes(),
        "{what} seed {seed}: checkpoint bytes diverged"
    );

    // Lockstep mode cross-checks state every sync window and turns
    // any divergence into a trap, so completing cleanly is itself an
    // assertion.
    let mut lock = fresh();
    let lock_exit = lock.run_with(BUDGET, TierConfig::fast_lockstep());
    assert_eq!(lock_exit, interp_exit, "{what} seed {seed}: lockstep exit diverged");
    assert_eq!(lock.checkpoint(), interp_cp, "{what} seed {seed}: lockstep state diverged");

    // Checkpoint round-trip at a random snapshot point: restoring
    // must be byte-identical, and resuming on either tier must land
    // on the same final state as the straight-through run.
    let total = interp.stats().retired;
    if total > 1 {
        let cut = 1 + r.below(total - 1);
        let mut part = fresh();
        let part_exit = part.run_with(cut, TierConfig::fast());
        assert_eq!(part_exit, EmuExit::StepLimit, "{what} seed {seed}: partial run");
        let cp = part.checkpoint();

        for (tier_name, tier) in
            [("interp", TierConfig::interp()), ("fast", TierConfig::fast())]
        {
            let mut resumed = fresh();
            resumed.restore(&cp).unwrap_or_else(|e| {
                panic!("{what} seed {seed}: restore failed: {e:?}")
            });
            assert_eq!(
                resumed.checkpoint().to_bytes(),
                cp.to_bytes(),
                "{what} seed {seed}: checkpoint round-trip not byte-identical"
            );
            let exit = resumed.run_with(BUDGET, tier);
            assert_eq!(
                exit, interp_exit,
                "{what} seed {seed}: {tier_name} resume exit diverged"
            );
            assert_eq!(
                resumed.checkpoint(),
                interp_cp,
                "{what} seed {seed}: {tier_name} resume final state diverged"
            );
        }
    }
}

/// 100 random programs per ISA: the fast tier is observationally
/// identical to the interpreter, and checkpoints round-trip.
#[test]
fn tiers_agree_on_random_programs() {
    for seed in 0..PROGRAMS {
        let mut r = SplitMix64::new(0x7133_0000 + seed);
        let src = program(&mut r);
        let module = build_ir(&src);

        let st = build_straight(&module, &StraightOptions::default());
        check_tiers("straight", seed, || StraightEmu::new(st.clone()), &mut r);

        // The tight distance limit exercises RMOV chains (the
        // compiler's distance-fixing pads) in the fast tier.
        let st31 = build_straight(&module, &StraightOptions::default().with_max_distance(31));
        check_tiers("straight d=31", seed, || StraightEmu::new(st31.clone()), &mut r);

        let rv = build_riscv(&module);
        check_tiers("riscv", seed, || RiscvEmu::new(rv.clone()), &mut r);
    }
}
