//! Cycle-accurate simulator validation: the out-of-order cores (with
//! all their speculation) must produce exactly the same architectural
//! behaviour as the in-order emulators, and their timing must be
//! sane.

use straight_compiler::StraightOptions;
use straight_sim::pipeline::{simulate, MachineConfig};
use straight_tests::{build_ir, build_riscv, build_straight, run_interp};

const MAX_CYCLES: u64 = 50_000_000;

fn check_all_machines(src: &str) {
    let module = build_ir(src);
    let expected = run_interp(&module);

    let rv_image = build_riscv(&module);
    for cfg in [MachineConfig::ss_2way(), MachineConfig::ss_4way()] {
        let name = cfg.name.clone();
        let r = simulate(rv_image.clone(), cfg, MAX_CYCLES).unwrap();
        assert_eq!(r.exit_code, Some(expected.exit_code), "{name}: exit code");
        assert_eq!(r.stdout, expected.stdout, "{name}: stdout");
        assert!(r.stats.retired > 0 && r.stats.cycles > 0, "{name}: no progress");
    }

    let opts = StraightOptions::default().with_max_distance(31);
    let s_image = build_straight(&module, &opts);
    for cfg in [MachineConfig::straight_2way(), MachineConfig::straight_4way()] {
        let name = cfg.name.clone();
        let r = simulate(s_image.clone(), cfg, MAX_CYCLES).unwrap();
        assert_eq!(r.exit_code, Some(expected.exit_code), "{name}: exit code");
        assert_eq!(r.stdout, expected.stdout, "{name}: stdout");
        assert!(r.stats.retired > 0 && r.stats.cycles > 0, "{name}: no progress");
    }
}

#[test]
fn straight_line_arithmetic() {
    check_all_machines("int main() { print_int((3 + 4) * (5 + 6) - 7); return 0; }");
}

#[test]
fn loops_with_branches() {
    check_all_machines(
        "int main() {
             int s = 0;
             int i;
             for (i = 0; i < 200; i++) {
                 if (i % 3 == 0) s += i;
                 else s -= 1;
             }
             print_int(s);
             return 0;
         }",
    );
}

#[test]
fn memory_traffic_and_forwarding() {
    check_all_machines(
        "int buf[64];
         int main() {
             int i;
             for (i = 0; i < 64; i++) buf[i] = i * i;
             int s = 0;
             for (i = 0; i < 64; i++) { buf[i] = buf[i] + 1; s += buf[i]; }
             print_int(s);
             return 0;
         }",
    );
}

#[test]
fn function_calls_and_recursion() {
    check_all_machines(
        "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
         int main() { print_int(fib(12)); return 0; }",
    );
}

#[test]
fn division_and_multiplication_units() {
    check_all_machines(
        "int main() {
             int s = 1;
             int i;
             for (i = 1; i < 50; i++) { s = (s * i) % 9973 + i / 3; }
             print_int(s);
             return 0;
         }",
    );
}

#[test]
fn data_dependent_branches_stress_predictor() {
    check_all_machines(
        "int lcg = 12345;
         int next() { lcg = lcg * 1103515245 + 12345; return (lcg >> 16) & 32767; }
         int main() {
             int taken = 0;
             int i;
             for (i = 0; i < 500; i++) { if (next() % 2) taken++; }
             print_int(taken);
             return 0;
         }",
    );
}

#[test]
fn tage_machines_match_too() {
    let module = build_ir(
        "int main() {
             int s = 0;
             int i;
             for (i = 0; i < 300; i++) { if (i % 24 == 23) s += 7; else s += 1; }
             print_int(s);
             return 0;
         }",
    );
    let expected = run_interp(&module);
    let opts = StraightOptions::default().with_max_distance(31);
    let s_image = build_straight(&module, &opts);
    let rv_image = build_riscv(&module);
    let r1 = simulate(rv_image, MachineConfig::ss_4way().with_tage(), MAX_CYCLES).unwrap();
    let r2 = simulate(s_image, MachineConfig::straight_4way().with_tage(), MAX_CYCLES).unwrap();
    assert_eq!(r1.stdout, expected.stdout);
    assert_eq!(r2.stdout, expected.stdout);
}

#[test]
fn ideal_recovery_is_not_slower() {
    let module = build_ir(
        "int lcg = 99;
         int next() { lcg = lcg * 1103515245 + 12345; return (lcg >> 16) & 32767; }
         int main() {
             int s = 0;
             int i;
             for (i = 0; i < 800; i++) { if (next() % 2) s += 3; else s -= 1; }
             print_int(s);
             return 0;
         }",
    );
    let expected = run_interp(&module);
    let rv_image = build_riscv(&module);
    let base = simulate(rv_image.clone(), MachineConfig::ss_4way(), MAX_CYCLES).unwrap();
    let ideal = simulate(rv_image, MachineConfig::ss_4way().with_ideal_recovery(), MAX_CYCLES).unwrap();
    assert_eq!(base.stdout, expected.stdout);
    assert_eq!(ideal.stdout, expected.stdout);
    assert!(
        ideal.stats.cycles <= base.stats.cycles,
        "ideal recovery should not be slower: {} vs {}",
        ideal.stats.cycles,
        base.stats.cycles
    );
    assert!(base.stats.branch_mispredicts > 0, "test needs mispredicts to be meaningful");
}

#[test]
fn straight_recovers_faster_than_ss_on_branchy_code() {
    // The paper's headline mechanism: same program, branchy, lots of
    // mispredicts — STRAIGHT's recovery (1 ROB read, shorter
    // front-end) should beat SS's ROB walk.
    let src = "int lcg = 7;
         int next() { lcg = lcg * 1103515245 + 12345; return (lcg >> 16) & 32767; }
         int main() {
             int s = 0;
             int i;
             for (i = 0; i < 2000; i++) { if (next() % 2) s += 3; else s = s ^ i; }
             print_int(s);
             return 0;
         }";
    let module = build_ir(src);
    let rv = simulate(build_riscv(&module), MachineConfig::ss_4way(), MAX_CYCLES).unwrap();
    let opts = StraightOptions::default().with_max_distance(31);
    let st = simulate(build_straight(&module, &opts), MachineConfig::straight_4way(), MAX_CYCLES).unwrap();
    assert_eq!(rv.stdout, st.stdout);
    assert!(rv.stats.branch_mispredicts > 100, "{}", rv.stats.branch_mispredicts);
    // Mispredict penalty should be visibly lower for STRAIGHT.
    assert!(
        st.stats.recovery_stall_cycles < rv.stats.recovery_stall_cycles,
        "STRAIGHT recovery stalls {} vs SS {}",
        st.stats.recovery_stall_cycles,
        rv.stats.recovery_stall_cycles
    );
}
