//! Shared helpers for the workspace-spanning integration tests: the
//! full MinC → {interpreter, STRAIGHT machine code, RV32IM machine
//! code} pipeline with differential checking.

#![forbid(unsafe_code)]

use straight_asm::{link_riscv, link_straight, Image};
use straight_compiler::{compile_riscv, compile_straight, StraightOptions};
use straight_ir::{compile_source, interp, Module};
use straight_sim::emu::{EmuResult, ExecBackend, RiscvEmu, StraightEmu};

/// One program's behaviour: output text plus exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Behaviour {
    /// Captured stdout.
    pub stdout: String,
    /// Exit code.
    pub exit_code: i32,
}

/// Compiles MinC to IR, panicking with the compile error on failure.
pub fn build_ir(src: &str) -> Module {
    match compile_source(src) {
        Ok(m) => m,
        Err(e) => panic!("MinC compilation failed: {e}\n{src}"),
    }
}

/// Runs the IR interpreter.
pub fn run_interp(module: &Module) -> Behaviour {
    let out = interp::run_main(module).expect("interpreter runs");
    Behaviour { stdout: out.stdout, exit_code: out.exit_code }
}

/// Compiles and links for STRAIGHT.
pub fn build_straight(module: &Module, opts: &StraightOptions) -> Image {
    let prog = compile_straight(module, opts).expect("STRAIGHT codegen");
    link_straight(&prog).expect("STRAIGHT link")
}

/// Compiles and links for RV32IM.
pub fn build_riscv(module: &Module) -> Image {
    let prog = compile_riscv(module).expect("riscv codegen");
    link_riscv(&prog).expect("riscv link")
}

/// Runs the STRAIGHT emulator with a generous budget.
pub fn run_straight(image: Image) -> EmuResult {
    StraightEmu::new(image).run(300_000_000)
}

/// Runs the RV32IM emulator with a generous budget.
pub fn run_riscv(image: Image) -> EmuResult {
    RiscvEmu::new(image).run(300_000_000)
}

fn behaviour_of(r: &EmuResult, what: &str) -> Behaviour {
    let code = match r.exit_code() {
        Some(c) => c,
        None => panic!("{what} did not complete: {:?}\n--- stdout ---\n{}", r.exit, r.stdout),
    };
    Behaviour { stdout: r.stdout.clone(), exit_code: code }
}

/// The full differential check: interpreter, STRAIGHT RAW, STRAIGHT
/// RE+, STRAIGHT RE+ with max distance 31, and RV32IM must agree.
pub fn check_differential(src: &str) -> Behaviour {
    let module = build_ir(src);
    let expected = run_interp(&module);

    let rv = run_riscv(build_riscv(&module));
    assert_eq!(behaviour_of(&rv, "riscv"), expected, "riscv disagrees with interpreter");

    for (name, opts) in [
        ("straight RAW", StraightOptions::raw()),
        ("straight RE+", StraightOptions::default()),
        ("straight RE+ d=31", StraightOptions::default().with_max_distance(31)),
        ("straight RAW d=31", StraightOptions::raw().with_max_distance(31)),
    ] {
        let r = run_straight(build_straight(&module, &opts));
        assert_eq!(behaviour_of(&r, name), expected, "{name} disagrees with interpreter");
    }
    expected
}
