#!/bin/sh
# Repo gate: build, full test suite, a warning-free clippy pass, a
# warning-free rustdoc pass, and a straight-lab smoke run producing a
# parseable machine-readable record.
# (crates/sim additionally denies unwrap/expect/panic via [lints] in
# its Cargo.toml — faults must travel as typed Traps, not panics.)
set -eux

cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# Smoke: the unified runner must produce a BENCH_fig11.json that its
# own validator accepts (parse + schema check + FromJson round-trip).
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
target/release/straight-lab --figure fig11 --quick --quiet --out "$SMOKE_DIR"
test -s "$SMOKE_DIR/BENCH_fig11.json"
target/release/straight-lab --validate "$SMOKE_DIR/BENCH_fig11.json"
