#!/bin/sh
# Repo gate: build, full test suite, a warning-free clippy pass, a
# warning-free rustdoc pass, and a straight-lab smoke run producing a
# parseable machine-readable record.
# (crates/sim additionally denies unwrap/expect/panic via [lints] in
# its Cargo.toml — faults must travel as typed Traps, not panics.)
set -eux

cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# The opt-in per-stage host profiler must keep compiling and passing.
cargo test -p straight-tests --features stage-profile -q --test stage_profile

# Smoke: the unified runner must produce a BENCH_fig11.json that its
# own validator accepts (parse + schema check + FromJson round-trip).
SMOKE_DIR=$(mktemp -d)
STRAIGHTD_PID=""
trap '{ [ -n "$STRAIGHTD_PID" ] && kill "$STRAIGHTD_PID" 2>/dev/null; } || true; rm -rf "$SMOKE_DIR"' EXIT
target/release/straight-lab --figure fig11 --quick --quiet --profile --out "$SMOKE_DIR"
test -s "$SMOKE_DIR/BENCH_fig11.json"
target/release/straight-lab --validate "$SMOKE_DIR/BENCH_fig11.json"

# The record must carry the host-side throughput profile: every
# pipeline cell (stats != null) reports a positive sim wall time and
# kcycles/sec; non-pipeline cells report null.
python3 - "$SMOKE_DIR/BENCH_fig11.json" <<'EOF'
import json, sys
cells = json.load(open(sys.argv[1]))["cells"]
piped = [c for c in cells if c["stats"] is not None]
assert piped, "fig11 should contain pipeline cells"
for c in cells:
    if c["stats"] is not None:
        assert c["sim_wall_ms"] > 0, c["id"]
        assert c["ksim_cycles_per_sec"] > 0, c["id"]
    else:
        assert c["sim_wall_ms"] is None and c["ksim_cycles_per_sec"] is None, c["id"]
print(f"throughput fields OK on {len(piped)} pipeline cells")
EOF

# Golden-record gate: a live --quick fig11 run (git rev pinned) must be
# byte-identical, after --normalize, to the committed golden record.
# Any accidental change to simulated behaviour fails here; intentional
# changes must regenerate the record (tests/golden/README.md).
STRAIGHT_GIT_REV=golden target/release/straight-lab --figure fig11 --quick \
    --quiet --out "$SMOKE_DIR/golden-live"
target/release/straight-lab --normalize tests/golden/BENCH_fig11_quick.json \
    > "$SMOKE_DIR/golden.norm"
target/release/straight-lab --normalize "$SMOKE_DIR/golden-live/BENCH_fig11.json" \
    > "$SMOKE_DIR/golden-live.norm"
cmp "$SMOKE_DIR/golden.norm" "$SMOKE_DIR/golden-live.norm"

# Fast-tier gate: the instruction-mix figure run on the fast
# (decoded-trace) emulator tier in lockstep mode — cross-checked
# against an interpreter twin every sync window, trapping on any
# architectural divergence — must produce a record byte-identical,
# after --normalize, to the interpreter tier's.
STRAIGHT_GIT_REV=ci target/release/straight-lab --figure fig15 --quick --quiet \
    --out "$SMOKE_DIR/tier-interp"
STRAIGHT_GIT_REV=ci target/release/straight-lab --figure fig15 --quick --quiet \
    --emu-tier fast-lockstep --out "$SMOKE_DIR/tier-fast"
target/release/straight-lab --normalize "$SMOKE_DIR/tier-interp/BENCH_fig15.json" \
    > "$SMOKE_DIR/tier-interp.norm"
target/release/straight-lab --normalize "$SMOKE_DIR/tier-fast/BENCH_fig15.json" \
    > "$SMOKE_DIR/tier-fast.norm"
cmp "$SMOKE_DIR/tier-interp.norm" "$SMOKE_DIR/tier-fast.norm"

# Sampled-simulation smoke: the checkpoint-sampled methodology figure
# must produce a record its own validator accepts, with paired
# (full)/(sampled) cells per workload x machine and positive estimates.
target/release/straight-lab --figure sampled --quick --quiet --out "$SMOKE_DIR/sampled"
test -s "$SMOKE_DIR/sampled/BENCH_sampled.json"
target/release/straight-lab --validate "$SMOKE_DIR/sampled/BENCH_sampled.json"
python3 - "$SMOKE_DIR/sampled/BENCH_sampled.json" <<'EOF'
import json, sys
cells = json.load(open(sys.argv[1]))["cells"]
full = {c["id"].replace(" (full)", ""): c for c in cells if c["id"].endswith(" (full)")}
samp = {c["id"].replace(" (sampled)", ""): c for c in cells if c["id"].endswith(" (sampled)")}
assert full and set(full) == set(samp), (sorted(full), sorted(samp))
for key, f in full.items():
    s = samp[key]
    assert f["cycles"] > 0 and s["cycles"] > 0, key
    assert f["retired"] == s["retired"], key
    assert s["ipc"] > 0, key
print(f"sampled schema OK: {len(full)} (full)/(sampled) pairs")
EOF

# Daemon smoke: start straightd on a Unix socket, run the same figure
# through `straight-lab --remote`, and require the fetched record to be
# byte-identical (after normalization) to the in-process one above.
SOCK="$SMOKE_DIR/straightd.sock"
target/release/straightd --listen "$SOCK" --jobs 2 &
STRAIGHTD_PID=$!
for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
test -S "$SOCK"
target/release/straight-lab --remote "$SOCK" --figure fig11 --quick --quiet \
    --out "$SMOKE_DIR/remote"
target/release/straight-lab --normalize "$SMOKE_DIR/BENCH_fig11.json" \
    > "$SMOKE_DIR/local.norm"
target/release/straight-lab --normalize "$SMOKE_DIR/remote/BENCH_fig11.json" \
    > "$SMOKE_DIR/remote.norm"
cmp "$SMOKE_DIR/local.norm" "$SMOKE_DIR/remote.norm"

# SIGTERM must drain gracefully: exit 0 and remove the socket file.
kill -TERM "$STRAIGHTD_PID"
wait "$STRAIGHTD_PID"
test ! -e "$SOCK"
STRAIGHTD_PID=""

# Crash-recovery smoke: a SIGKILL mid-run must leave the record store
# either clean or quarantined — never serving torn bytes — and a
# restarted daemon must answer the same figure byte-identically from
# the store, without re-simulating.
# The git revision is stamped into records and stable within one CI
# run, so restarts compare byte-identically without pinning it.
STORE="$SMOKE_DIR/store"
target/release/straightd --listen "$SOCK" --jobs 2 --store "$STORE" &
STRAIGHTD_PID=$!
for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
# Kick off work, then SIGKILL the daemon mid-run; the client is
# expected to fail — only the store's integrity matters here.
target/release/straight-lab --remote "$SOCK" --figure fig11 --quiet --no-write \
    --remote-timeout-ms 2000 --remote-retries 2 &
CLIENT_PID=$!
sleep 0.4
kill -KILL "$STRAIGHTD_PID"
wait "$STRAIGHTD_PID" || true
wait "$CLIENT_PID" || true
STRAIGHTD_PID=""

# Restart over the same store: the boot scan must quarantine anything
# torn (typically nothing: writes are atomic), then serve the figure.
target/release/straightd --listen "$SOCK" --jobs 2 --store "$STORE" &
STRAIGHTD_PID=$!
for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
target/release/straight-lab --remote "$SOCK" --figure fig11 --quick --quiet \
    --remote-retries 6 --out "$SMOKE_DIR/recovered"
target/release/straight-lab --normalize "$SMOKE_DIR/recovered/BENCH_fig11.json" \
    > "$SMOKE_DIR/recovered.norm"
cmp "$SMOKE_DIR/local.norm" "$SMOKE_DIR/recovered.norm"

# Restart once more: the rerun must be answered from the warm store
# (store hits, zero run-cache lookups) and the stats op must carry the
# durability counters.
kill -TERM "$STRAIGHTD_PID"
wait "$STRAIGHTD_PID"
target/release/straightd --listen "$SOCK" --jobs 2 --store "$STORE" &
STRAIGHTD_PID=$!
for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
target/release/straight-lab --remote "$SOCK" --figure fig11 --quick --quiet --no-write
target/release/straight-lab --remote "$SOCK" --stats > "$SMOKE_DIR/stats.json"
python3 - "$SMOKE_DIR/stats.json" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))
store = stats["store"]
assert store is not None, "stats must carry the store section"
assert store["entries"] > 0, store
assert store["quarantined"] == 0, store
assert store["hits"] > 0, "warm boot must serve the rerun from the store"
assert not store["memory_only"], store
assert stats["cache"]["run_lookups"] == 0, "store hits must skip simulation"
assert stats["worker_panics"] == 0, stats
assert "queue_full_refusals" in stats and "idle_reaped" in stats, stats
print("crash-recovery stats OK:", json.dumps(store))
EOF
kill -TERM "$STRAIGHTD_PID"
wait "$STRAIGHTD_PID"
STRAIGHTD_PID=""

# The seeded chaos suite (store corruption, SIGKILL restarts, panic
# injection) must pass deterministically.
cargo test -p straight-bench --test chaos -q
