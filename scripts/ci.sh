#!/bin/sh
# Repo gate: build, full test suite, and a warning-free clippy pass
# (crates/sim additionally denies unwrap/expect/panic via [lints] in
# its Cargo.toml — faults must travel as typed Traps, not panics).
set -eux

cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
